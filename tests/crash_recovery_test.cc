#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "cluster/cluster_persistence.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "consensus/network.h"
#include "replication/replication.h"
#include "storage/block_cache.h"
#include "storage/persistence.h"

namespace esdb {
namespace {

namespace fs = std::filesystem;

// Every registered fail-point site must have a crash/fault scenario in
// this file. MatrixCoversEverySite cross-checks this list against
// FailPoints::AllSites(): adding a site to the registry without adding
// it (and a scenario TEST) here fails the build's test run.
constexpr const char* kMatrixSites[] = {
    failsite::kTranslogAppend,      // CrashMatrix.TranslogAppend
    failsite::kTranslogTruncate,    // CrashMatrix.TranslogTruncate
    failsite::kSaveSegment,         // CrashMatrix.SaveSegment
    failsite::kSaveTranslog,        // CrashMatrix.SaveTranslog
    failsite::kSaveManifest,        // CrashMatrix.SaveManifest*
    failsite::kTornTail,            // CrashMatrix.TornTail*
    failsite::kLoadSegment,         // CrashMatrix.LoadSegment
    failsite::kColdCompress,        // CrashMatrix.ColdCompress
    failsite::kColdWrite,           // CrashMatrix.ColdWrite
    failsite::kColdLoad,            // CrashMatrix.ColdLoad
    failsite::kReplicationCopySegment,  // CrashMatrix.ReplicationCopySegment
    failsite::kReplicationCatchup,  // CrashMatrix.ReplicationCatchup
    failsite::kNetDrop,             // CrashMatrix.NetDrop
    failsite::kNetDelay,            // CrashMatrix.NetDelay
    // Live-migration edges: scenarios live in tests/migration_test.cc
    // (MigrationFailMatrix.*), one per state-machine edge, each with a
    // replay oracle proving no acknowledged write is lost.
    failsite::kMigrateStart,        // MigrationFailMatrix.StartFails
    failsite::kMigrateCopySegment,  // MigrationFailMatrix.CopySegmentFails
    failsite::kMigrateDeltaReplay,  // MigrationFailMatrix.DeltaReplayFails
    failsite::kMigrateMirrorWrite,  // MigrationFailMatrix.MirrorWriteFails
    failsite::kMigrateCutover,      // MigrationFailMatrix.CutoverFails
};

IndexSpec TestSpec() {
  IndexSpec spec;
  spec.composite_indexes = {{"tenant_id", "created_time"}};
  return spec;
}

WriteOp Insert(int64_t record, int64_t time, int64_t status = 0) {
  WriteOp op;
  op.type = OpType::kInsert;
  op.doc.Set(kFieldTenantId, Value(int64_t(1)));
  op.doc.Set(kFieldRecordId, Value(record));
  op.doc.Set(kFieldCreatedTime, Value(time));
  op.doc.Set("status", Value(status));
  return op;
}

WriteOp Delete(int64_t record, int64_t time) {
  WriteOp op;
  op.type = OpType::kDelete;
  op.doc.Set(kFieldTenantId, Value(int64_t(1)));
  op.doc.Set(kFieldRecordId, Value(record));
  op.doc.Set(kFieldCreatedTime, Value(time));
  return op;
}

void ExpectSameLiveSet(const ShardStore& a, const ShardStore& b,
                       int64_t max_record) {
  EXPECT_EQ(a.num_live_docs(), b.num_live_docs());
  for (int64_t record = 0; record <= max_record; ++record) {
    auto da = a.GetByRecordId(record);
    auto db = b.GetByRecordId(record);
    ASSERT_EQ(da.ok(), db.ok()) << "record " << record;
    if (da.ok()) {
      EXPECT_EQ(*da, *db) << "record " << record;
    }
  }
}

// Base fixture: temp dir + registry hygiene. Tests here run in every
// build configuration, including ESDB_FAILPOINTS=OFF.
class RecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FailPoints::DisarmAll();
    dir_ = fs::temp_directory_path() /
           ("esdb_crash_" + std::to_string(::testing::UnitTest::GetInstance()
                                               ->random_seed()) +
            "_" + std::to_string(counter_++));
  }
  void TearDown() override {
    FailPoints::DisarmAll();
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  ShardStore::Options Manual() {
    ShardStore::Options options;
    options.refresh_doc_count = 0;
    return options;
  }

  fs::path dir_;
  static int counter_;
};

int RecoveryTest::counter_ = 0;

// Tests that arm fail points: skip themselves in compiled-out builds.
class CrashMatrix : public RecoveryTest {
 protected:
  void SetUp() override {
    RecoveryTest::SetUp();
    if (!FailPoints::CompiledIn()) {
      GTEST_SKIP() << "fail points compiled out (ESDB_FAILPOINTS=OFF)";
    }
  }
};

TEST_F(RecoveryTest, MatrixCoversEverySite) {
  std::vector<std::string> registered = FailPoints::AllSites();
  std::vector<std::string> covered(std::begin(kMatrixSites),
                                   std::end(kMatrixSites));
  std::sort(registered.begin(), registered.end());
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(registered, covered)
      << "every registered fail-point site needs a scenario in "
         "crash_recovery_test.cc (and vice versa)";
}

// translog/append: the append to the durability log errors (disk
// full). The op must be rejected atomically — no partial state, and
// the shard keeps accepting writes afterwards.
TEST_F(CrashMatrix, TranslogAppend) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }

  FailPoints::Arm(failsite::kTranslogAppend, FailPoints::Once());
  auto failed = store.Apply(Insert(100, 100));
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  // Nothing of the rejected op leaked into log or buffer.
  EXPECT_EQ(store.translog().num_entries(), 10u);
  EXPECT_FALSE(store.GetByRecordId(100).ok());

  ASSERT_TRUE(store.Apply(Insert(11, 11)).ok());
  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());
  auto opened = OpenShard(&spec, Manual(), dir_.string());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  (*opened)->Refresh();
  store.Refresh();
  ExpectSameLiveSet(store, **opened, 120);
}

// translog/truncate: the crash hits between checkpointing segments and
// truncating the log (Flush). The retained log overlaps the segments;
// recovery must skip the overlap instead of double-applying it.
TEST_F(CrashMatrix, TranslogTruncate) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  store.Refresh();

  FailPoints::Arm(failsite::kTranslogTruncate, FailPoints::Once());
  store.Flush();  // "crashes" before truncating
  EXPECT_EQ(store.translog().num_entries(), 20u);  // overlap retained

  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());
  RecoveryReport report;
  auto opened = OpenShard(&spec, Manual(), dir_.string(), &report);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(report.ops_skipped, 20u);  // idempotent overlap, not replayed
  EXPECT_EQ(report.ops_replayed, 0u);
  (*opened)->Refresh();
  ExpectSameLiveSet(store, **opened, 25);

  // A later, healthy Flush truncates as usual.
  store.Flush();
  EXPECT_EQ(store.translog().num_entries(), 0u);
}

// For the three save-path crash points the oracle is identical: a
// checkpoint that did not reach its MANIFEST commit changes nothing —
// recovery lands exactly on the previous checkpoint.
void RunFailedCheckpointScenario(const char* site, const fs::path& dir) {
  IndexSpec spec = TestSpec();
  ShardStore::Options manual;
  manual.refresh_doc_count = 0;
  ShardStore store(&spec, manual);
  // Checkpoint A: 20 refreshed docs + 5 buffered tail ops.
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  store.Refresh();
  for (int64_t i = 20; i < 25; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  ASSERT_TRUE(SaveShard(store, dir.string()).ok());

  // More work that checkpoint B will fail to persist.
  for (int64_t i = 25; i < 35; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  ASSERT_TRUE(store.Apply(Delete(3, 3)).ok());
  store.Refresh();

  FailPoints::Arm(site, FailPoints::Once());
  auto failed = SaveShard(store, dir.string());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(FailPoints::Triggers(site), 1u) << site;

  // Recovery sees checkpoint A, byte for byte: 25 docs, record 3
  // alive, records 25.. absent.
  RecoveryReport report;
  auto opened = OpenShard(&spec, manual, dir.string(), &report);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_FALSE(report.torn_tail);
  (*opened)->Refresh();
  EXPECT_EQ((*opened)->num_live_docs(), 25u);
  EXPECT_TRUE((*opened)->GetByRecordId(3).ok());
  EXPECT_FALSE((*opened)->GetByRecordId(25).ok());

  // Retrying the checkpoint (the fail point auto-disarmed) persists
  // everything; recovery now matches the live store.
  ASSERT_TRUE(SaveShard(store, dir.string()).ok());
  auto reopened = OpenShard(&spec, manual, dir.string());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  (*reopened)->Refresh();
  store.Refresh();
  ExpectSameLiveSet(store, **reopened, 40);
}

TEST_F(CrashMatrix, SaveSegment) {
  RunFailedCheckpointScenario(failsite::kSaveSegment, dir_);
}

TEST_F(CrashMatrix, SaveTranslog) {
  RunFailedCheckpointScenario(failsite::kSaveTranslog, dir_);
}

TEST_F(CrashMatrix, SaveManifest) {
  RunFailedCheckpointScenario(failsite::kSaveManifest, dir_);
}

// Regression for the manifest/translog pairing hole: a Flush between
// two checkpoints truncates the in-memory log, and the crash lands
// after the new translog file is on disk but before the MANIFEST
// commit. The committed manifest must keep referencing the OLD
// translog file (they are versioned by range) — pairing the old
// manifest with the newer, shorter log would silently lose the ops in
// between.
TEST_F(CrashMatrix, SaveManifestAfterFlushKeepsOldTranslog) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  // Checkpoint A: 10 refreshed docs + 5 tail ops in the log.
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  store.Refresh();
  for (int64_t i = 10; i < 15; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());

  // Refresh + Flush: the tail ops move into segments and the log is
  // truncated — the next checkpoint's translog file is (nearly) empty.
  store.Refresh();
  store.Flush();
  FailPoints::Arm(failsite::kSaveManifest, FailPoints::Once());
  ASSERT_FALSE(SaveShard(store, dir_.string()).ok());

  // Checkpoint A still recovers whole: the 5 tail ops replay from A's
  // translog file even though a newer (empty) translog file exists.
  RecoveryReport report;
  auto opened = OpenShard(&spec, Manual(), dir_.string(), &report);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(report.ops_replayed, 5u);
  (*opened)->Refresh();
  EXPECT_EQ((*opened)->num_live_docs(), 15u);
  for (int64_t i = 0; i < 15; ++i) {
    EXPECT_TRUE((*opened)->GetByRecordId(i).ok()) << i;
  }
}

// persist/torn-tail: the translog write "succeeds" but the device tore
// the final record (fsync lie). Recovery must truncate at the tear —
// prefix-consistent, warned, never garbage — and re-recovery from the
// same files must be byte-identical.
TEST_F(CrashMatrix, TornTail) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  store.Refresh();
  for (int64_t i = 20; i < 25; ++i) {  // tail: buffered only
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }

  FailPoints::Arm(failsite::kTornTail, FailPoints::Once(/*arg=*/3));
  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());  // reports success!

  RecoveryReport report;
  auto opened = OpenShard(&spec, Manual(), dir_.string(), &report);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.ops_discarded, 1u);  // a 3-byte tear eats one record
  EXPECT_EQ(report.ops_replayed, 4u);
  EXPECT_EQ(report.ops_skipped, 20u);
  (*opened)->Refresh();
  // Prefix-consistent: ops 0..23 recovered, op 24 (the torn record)
  // gone, nothing invented.
  EXPECT_EQ((*opened)->num_live_docs(), 24u);
  EXPECT_TRUE((*opened)->GetByRecordId(23).ok());
  EXPECT_FALSE((*opened)->GetByRecordId(24).ok());

  // Idempotent re-recovery: same report, same state.
  RecoveryReport again;
  auto reopened = OpenShard(&spec, Manual(), dir_.string(), &again);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(again.ops_discarded, report.ops_discarded);
  EXPECT_EQ(again.ops_replayed, report.ops_replayed);
  (*reopened)->Refresh();
  ExpectSameLiveSet(**opened, **reopened, 30);
}

// Torn tail without fail points: damage the file the way a real torn
// sector would, by truncating it on disk. This is the regression test
// that holds even in ESDB_FAILPOINTS=OFF builds.
TEST_F(RecoveryTest, TornTailOnDiskTruncation) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  for (int64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());

  // Tear bytes off the end of the translog file.
  fs::path log_path;
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".log") log_path = entry.path();
  }
  ASSERT_FALSE(log_path.empty());
  const uintmax_t size = fs::file_size(log_path);
  ASSERT_GT(size, 5u);
  fs::resize_file(log_path, size - 5);

  RecoveryReport report;
  auto opened = OpenShard(&spec, Manual(), dir_.string(), &report);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(report.torn_tail);
  EXPECT_EQ(report.ops_discarded, 1u);
  EXPECT_EQ(report.ops_replayed, 7u);
  (*opened)->Refresh();
  EXPECT_EQ((*opened)->num_live_docs(), 7u);
  EXPECT_FALSE((*opened)->GetByRecordId(7).ok());
}

// persist/load-segment: a segment read fails during recovery (bad
// sector). Recovery fails cleanly — no partial store — and a retry
// against the intact files succeeds completely.
TEST_F(CrashMatrix, LoadSegment) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  store.Refresh();
  for (int64_t i = 10; i < 20; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  store.Refresh();  // two segments
  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());

  FailPoints::Arm(failsite::kLoadSegment, FailPoints::Once());
  auto failed = OpenShard(&spec, Manual(), dir_.string());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);

  auto opened = OpenShard(&spec, Manual(), dir_.string());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  (*opened)->Refresh();
  EXPECT_EQ((*opened)->num_live_docs(), 20u);
}

ShardStore::Options TieredOptions(const fs::path& spill_dir) {
  ShardStore::Options options;
  options.refresh_doc_count = 0;
  options.tier.enabled = true;
  options.tier.spill_dir = spill_dir.string();
  options.tier.cache = std::make_shared<BlockCache>();
  std::error_code ec;
  fs::create_directories(spill_dir, ec);
  return options;
}

// tier/cold-compress: the demotion's compression stage fails mid-
// merge. The tier transition aborts atomically — the shard keeps its
// hot segments and every doc — and the next merge retries cleanly.
TEST_F(CrashMatrix, ColdCompress) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, TieredOptions(dir_ / "spill"));
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  store.Refresh();
  store.SetTierCold(true);

  FailPoints::Arm(failsite::kColdCompress, FailPoints::Once());
  EXPECT_FALSE(store.MaybeMerge());
  EXPECT_EQ(FailPoints::Triggers(failsite::kColdCompress), 1u);
  // Nothing demoted, nothing lost.
  ASSERT_FALSE(store.Snapshot()->empty());
  EXPECT_FALSE((*store.Snapshot())[0].is_cold());
  EXPECT_EQ(store.num_live_docs(), 30u);

  // Retry (the fail point auto-disarmed) demotes with all docs.
  EXPECT_TRUE(store.MaybeMerge());
  EXPECT_TRUE((*store.Snapshot())[0].is_cold());
  EXPECT_EQ(store.num_live_docs(), 30u);
  EXPECT_TRUE(store.GetByRecordId(7).ok());
}

// tier/cold-write: the spill write fails — first during demotion
// (the transition aborts, segments stay hot), then during a
// checkpoint's cold-file copy (the checkpoint aborts before its
// manifest commit; the previous checkpoint stays recoverable).
TEST_F(CrashMatrix, ColdWrite) {
  IndexSpec spec = TestSpec();
  const ShardStore::Options options = TieredOptions(dir_ / "spill");
  ShardStore store(&spec, options);
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  store.Refresh();
  store.SetTierCold(true);

  FailPoints::Arm(failsite::kColdWrite, FailPoints::Once());
  EXPECT_FALSE(store.MaybeMerge());
  EXPECT_FALSE((*store.Snapshot())[0].is_cold());
  EXPECT_EQ(store.num_live_docs(), 30u);
  EXPECT_TRUE(store.MaybeMerge());  // retry demotes
  ASSERT_TRUE((*store.Snapshot())[0].is_cold());

  // Checkpoint the cold shard under a cold-file write failure.
  const fs::path ckpt = dir_ / "ckpt";
  FailPoints::Arm(failsite::kColdWrite, FailPoints::Once());
  ASSERT_FALSE(SaveShard(store, ckpt.string()).ok());
  EXPECT_FALSE(OpenShard(&spec, options, ckpt.string()).ok());  // no commit

  // Retry persists; recovery returns the cold shard whole.
  ASSERT_TRUE(SaveShard(store, ckpt.string()).ok());
  auto opened = OpenShard(&spec, options, ckpt.string());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->num_live_docs(), 30u);
  EXPECT_TRUE((*(*opened)->Snapshot())[0].is_cold());
}

// tier/cold-load: a cold-file read fails — during recovery (OpenShard
// fails cleanly, the retry succeeds from the intact file) and on the
// cold query path (the read errors, the retry decompresses fine).
TEST_F(CrashMatrix, ColdLoad) {
  IndexSpec spec = TestSpec();
  const ShardStore::Options options = TieredOptions(dir_ / "spill");
  const fs::path ckpt = dir_ / "ckpt";
  {
    ShardStore store(&spec, options);
    for (int64_t i = 0; i < 30; ++i) {
      ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
    }
    store.Refresh();
    store.SetTierCold(true);
    ASSERT_TRUE(store.MaybeMerge());
    ASSERT_TRUE(SaveShard(store, ckpt.string()).ok());
  }

  FailPoints::Arm(failsite::kColdLoad, FailPoints::Once());
  auto failed = OpenShard(&spec, options, ckpt.string());
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);

  auto opened = OpenShard(&spec, options, ckpt.string());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->num_live_docs(), 30u);

  // Cold read fault: the point read surfaces the error, never
  // garbage; the retry reads through the cache as usual.
  FailPoints::Arm(failsite::kColdLoad, FailPoints::Once());
  EXPECT_FALSE((*opened)->GetByRecordId(5).ok());
  auto doc = (*opened)->GetByRecordId(5);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->record_id(), 5);
}

// replication/copy-segment: the copy stream dies mid-round. The
// replica lags but is never corrupted; the next round re-diffs and
// converges.
TEST_F(CrashMatrix, ReplicationCopySegment) {
  IndexSpec spec = TestSpec();
  ShardStore::Options manual = Manual();
  ReplicatedShard shard(&spec, manual, ReplicationMode::kPhysical);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(shard.Apply(Insert(i, i)).ok());
  }
  ASSERT_TRUE(shard.Refresh().ok());
  ExpectSameLiveSet(*shard.primary(), *shard.replica(), 20);

  for (int64_t i = 20; i < 40; ++i) {
    ASSERT_TRUE(shard.Apply(Insert(i, i)).ok());
  }
  FailPoints::Arm(failsite::kReplicationCopySegment, FailPoints::Once());
  auto failed = shard.Refresh();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);
  // The replica fell behind but holds a consistent older state.
  EXPECT_LT(shard.replica()->num_live_docs(),
            shard.primary()->num_live_docs());

  ASSERT_TRUE(shard.Refresh().ok());  // heals
  ExpectSameLiveSet(*shard.primary(), *shard.replica(), 45);
}

// replication/catchup: the whole catch-up round is unreachable. A
// later Refresh() converges, and a failover after the heal loses
// nothing.
TEST_F(CrashMatrix, ReplicationCatchup) {
  IndexSpec spec = TestSpec();
  ReplicatedShard shard(&spec, Manual(), ReplicationMode::kPhysical);
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(shard.Apply(Insert(i, i)).ok());
  }
  FailPoints::Arm(failsite::kReplicationCatchup, FailPoints::Once());
  auto failed = shard.Refresh();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.code(), StatusCode::kUnavailable);

  ASSERT_TRUE(shard.Refresh().ok());
  ExpectSameLiveSet(*shard.primary(), *shard.replica(), 35);

  auto promoted = std::move(shard).Failover();
  ASSERT_TRUE(promoted.ok());
  (*promoted)->Refresh();
  EXPECT_EQ((*promoted)->num_live_docs(), 30u);
}

// consensus/net-drop: deterministic message loss injected below
// SimNetwork's own probabilistic drops.
TEST_F(CrashMatrix, NetDrop) {
  VirtualClock clock;
  SimNetwork net(&clock, SimNetwork::Options{});
  FailPoints::Arm(failsite::kNetDrop, FailPoints::EveryN(1));
  Message m;
  m.from = 1;
  m.to = 2;
  net.Send(m);
  clock.Advance(kMicrosPerSecond);
  EXPECT_TRUE(net.Receive(2).empty());
  EXPECT_EQ(net.messages_dropped(), 1u);

  FailPoints::Disarm(failsite::kNetDrop);
  net.Send(m);
  clock.Advance(kMicrosPerSecond);
  EXPECT_EQ(net.Receive(2).size(), 1u);
}

// consensus/net-delay: injected extra latency (arg = micros).
TEST_F(CrashMatrix, NetDelay) {
  VirtualClock clock;
  SimNetwork::Options options;
  options.latency = 1 * kMicrosPerMilli;
  SimNetwork net(&clock, options);
  FailPoints::Arm(failsite::kNetDelay,
                  FailPoints::Once(/*arg=*/5 * kMicrosPerMilli));
  Message m;
  m.from = 1;
  m.to = 2;
  net.Send(m);
  clock.Advance(1 * kMicrosPerMilli);
  EXPECT_TRUE(net.Receive(2).empty());  // still delayed
  clock.Advance(5 * kMicrosPerMilli);
  EXPECT_EQ(net.Receive(2).size(), 1u);
}

// Cluster-level recovery entry point: RecoverCluster reports what was
// replayed and discarded, per shard and in total.
TEST_F(RecoveryTest, RecoverClusterReportsReplayedOps) {
  Esdb::Options options;
  options.num_shards = 4;
  options.store.refresh_doc_count = 0;
  Esdb db(options);
  for (int64_t i = 0; i < 40; ++i) {
    Document doc;
    doc.Set(kFieldTenantId, Value(int64_t(1 + i % 3)));
    doc.Set(kFieldRecordId, Value(i));
    doc.Set(kFieldCreatedTime, Value(i));
    ASSERT_TRUE(db.Insert(std::move(doc)).ok());
  }
  db.RefreshAll();
  for (int64_t i = 40; i < 52; ++i) {  // tail: buffered only
    Document doc;
    doc.Set(kFieldTenantId, Value(int64_t(1 + i % 3)));
    doc.Set(kFieldRecordId, Value(i));
    doc.Set(kFieldCreatedTime, Value(i));
    ASSERT_TRUE(db.Insert(std::move(doc)).ok());
  }
  ASSERT_TRUE(SaveCluster(db, dir_.string()).ok());

  Esdb::Options reopened_options;
  reopened_options.num_shards = 4;
  reopened_options.store.refresh_doc_count = 0;
  ClusterRecoveryReport report;
  auto recovered = RecoverCluster(reopened_options, dir_.string(), &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(report.shards.size(), 4u);
  EXPECT_EQ(report.total.ops_replayed, 12u);
  EXPECT_EQ(report.total.ops_skipped, 40u);
  EXPECT_EQ(report.total.ops_discarded, 0u);
  EXPECT_FALSE(report.total.torn_tail);
  EXPECT_FALSE(report.ToString().empty());
  (*recovered)->RefreshAll();
  EXPECT_EQ((*recovered)->TotalDocs(), 52u);
}

// Cluster recovery across torn shard translogs: every shard's tail is
// torn; the cluster report aggregates the damage and the recovered
// cluster holds exactly the surviving prefix on every shard.
TEST_F(CrashMatrix, RecoverClusterAggregatesTornTails) {
  Esdb::Options options;
  options.num_shards = 4;
  options.store.refresh_doc_count = 0;
  Esdb db(options);
  uint64_t written = 0;
  for (int64_t i = 0; i < 48; ++i, ++written) {
    Document doc;
    doc.Set(kFieldTenantId, Value(int64_t(1 + i % 3)));
    doc.Set(kFieldRecordId, Value(i));
    doc.Set(kFieldCreatedTime, Value(i));
    ASSERT_TRUE(db.Insert(std::move(doc)).ok());
  }
  // Tear the tail of every shard's translog during the save.
  FailPoints::Arm(failsite::kTornTail, FailPoints::EveryN(1, /*arg=*/2));
  ASSERT_TRUE(SaveCluster(db, dir_.string()).ok());
  FailPoints::Disarm(failsite::kTornTail);

  Esdb::Options reopened_options;
  reopened_options.num_shards = 4;
  reopened_options.store.refresh_doc_count = 0;
  ClusterRecoveryReport report;
  auto recovered = RecoverCluster(reopened_options, dir_.string(), &report);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE(report.total.torn_tail);
  // A 2-byte tear eats exactly the final record of each non-empty log.
  uint64_t torn_shards = 0;
  for (const RecoveryReport& shard : report.shards) {
    if (shard.torn_tail) {
      ++torn_shards;
      EXPECT_EQ(shard.ops_discarded, 1u);
    }
  }
  EXPECT_GT(torn_shards, 0u);
  EXPECT_EQ(report.total.ops_discarded, torn_shards);
  (*recovered)->RefreshAll();
  EXPECT_EQ((*recovered)->TotalDocs(), written - torn_shards);
}

// A site armed kCrash really does take the process down at the site —
// the mode the child-process harnesses rely on.
TEST_F(CrashMatrix, CrashModeDiesInsideSave) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  ASSERT_TRUE(store.Apply(Insert(1, 1)).ok());
  store.Refresh();
  FailPoints::Arm(failsite::kSaveManifest, FailPoints::CrashHere());
  EXPECT_DEATH_IF_SUPPORTED((void)SaveShard(store, dir_.string()),
                            "fail point");
  FailPoints::Disarm(failsite::kSaveManifest);
}

// ---------------------------------------------------------------------
// Randomized recovery fuzzer: a random DML workload interleaved with
// refresh/flush/merge and checkpoint attempts, each checkpoint armed
// with a randomly chosen crash point (or a torn tail, or nothing).
// Oracle: recovery must land exactly on the reference state obtained
// by replaying the surviving op prefix — no invented docs, no lost
// committed ops — and re-recovery must be idempotent. The iteration
// seed is printed on failure; ESDB_FUZZ_ITERS overrides the count.
// ---------------------------------------------------------------------

int FuzzIterations() {
  const char* env = std::getenv("ESDB_FUZZ_ITERS");
  if (env != nullptr) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 200;
}

TEST_F(CrashMatrix, RandomizedRecoveryFuzzer) {
  IndexSpec spec = TestSpec();
  const int iterations = FuzzIterations();
  for (int iter = 0; iter < iterations; ++iter) {
    const uint64_t seed = 0x5eedbeef + uint64_t(iter) * 1000003;
    SCOPED_TRACE("fuzzer seed " + std::to_string(seed) + " (iteration " +
                 std::to_string(iter) + ")");
    Rng rng(seed);
    const fs::path dir = dir_ / ("iter-" + std::to_string(iter));

    // Half the iterations run the shard tiered: random hot/cold
    // reclassification and tier-transition merges interleave with the
    // DML, checkpoints cover cold files, and the recovery oracle
    // (an always-hot reference replay) must still match exactly.
    const bool tiered = rng.Bernoulli(0.5);
    const ShardStore::Options store_options =
        tiered ? TieredOptions(dir_ / ("spill-" + std::to_string(iter)))
               : Manual();
    ShardStore store(&spec, store_options);
    std::vector<WriteOp> ops;  // every op the store accepted, in order
    struct Committed {
      size_t op_count = 0;        // translog end_seq at the commit
      uint64_t refreshed_seq = 0; // segment coverage at the commit
      bool torn = false;          // the commit's translog tail was torn
    };
    std::optional<Committed> committed;
    int64_t sentinel_record = 1000;

    const int steps = 20 + int(rng.Uniform(40));
    for (int step = 0; step < steps; ++step) {
      // DML: mostly upserts, some deletes, over a small record domain
      // so ops collide and tombstones matter.
      const int64_t record = int64_t(rng.Uniform(25));
      if (rng.Bernoulli(0.1)) {
        // A deterministic translog-append failure: the op must vanish
        // without a trace.
        FailPoints::Arm(failsite::kTranslogAppend, FailPoints::Once());
        WriteOp doomed = Insert(record, step, -1);
        ASSERT_FALSE(store.Apply(doomed).ok());
      }
      WriteOp op = rng.Bernoulli(0.2) ? Delete(record, step)
                                      : Insert(record, step, int64_t(step));
      ASSERT_TRUE(store.Apply(op).ok());
      ops.push_back(op);

      if (rng.Bernoulli(0.25)) store.Refresh();
      if (rng.Bernoulli(0.1)) store.MaybeMerge();
      if (tiered && rng.Bernoulli(0.2)) {
        store.SetTierCold(rng.Bernoulli(0.6));
        if (rng.Bernoulli(0.4)) {
          // The tier transition itself faults: the merge must abort
          // atomically, losing nothing (verified by the oracle).
          FailPoints::Arm(rng.Bernoulli(0.5) ? failsite::kColdCompress
                                             : failsite::kColdWrite,
                          FailPoints::Once());
          store.MaybeMerge();
          FailPoints::DisarmAll();
        } else {
          store.MaybeMerge();
        }
      }
      if (rng.Bernoulli(0.1)) {
        if (rng.Bernoulli(0.3)) {
          // Crash before the truncate: the log keeps its overlap.
          FailPoints::Arm(failsite::kTranslogTruncate, FailPoints::Once());
        }
        store.Flush();
      }

      if (rng.Bernoulli(0.25)) {
        // Checkpoint attempt under a randomly chosen fault.
        const uint64_t fault = rng.Uniform(7);
        bool torn = false;
        switch (fault) {
          case 0:
            FailPoints::Arm(failsite::kSaveSegment, FailPoints::Once());
            break;
          case 1:
            FailPoints::Arm(failsite::kSaveTranslog, FailPoints::Once());
            break;
          case 2:
            FailPoints::Arm(failsite::kSaveManifest, FailPoints::Once());
            break;
          case 6:
            // Cold-file copy failure. Only fires when the checkpoint
            // actually writes a cold file; a hot shard's save simply
            // succeeds with the site still armed (disarmed below).
            FailPoints::Arm(failsite::kColdWrite, FailPoints::Once());
            break;
          case 3:
            // Torn tail. Precede it with a sentinel insert of a fresh
            // record so the record under the tear has unambiguous
            // prefix semantics (see DESIGN.md).
            torn = true;
            {
              WriteOp sentinel = Insert(sentinel_record++, step, step);
              ASSERT_TRUE(store.Apply(sentinel).ok());
              ops.push_back(sentinel);
            }
            FailPoints::Arm(failsite::kTornTail,
                            FailPoints::Once(1 + rng.Uniform(4)));
            break;
          default:
            break;  // healthy checkpoint
        }
        const Status saved = SaveShard(store, dir.string());
        FailPoints::DisarmAll();
        if (saved.ok()) {
          committed = Committed{ops.size(), store.refreshed_seq(), torn};
        }
      }
    }
    FailPoints::DisarmAll();

    // Final crash: recover from whatever the directory holds.
    if (!committed.has_value()) {
      EXPECT_FALSE(OpenShard(&spec, Manual(), dir.string()).ok());
      std::error_code ec;
      fs::remove_all(dir, ec);
      continue;
    }

    // Sometimes the first recovery attempt hits a segment-read fault
    // (hot or cold path); the retry must then succeed from the intact
    // files.
    if (rng.Bernoulli(0.2)) {
      FailPoints::Arm(tiered && rng.Bernoulli(0.5) ? failsite::kColdLoad
                                                   : failsite::kLoadSegment,
                      FailPoints::Once());
      auto attempt = OpenShard(&spec, store_options, dir.string());
      FailPoints::DisarmAll();
      if (!attempt.ok()) {
        EXPECT_EQ(attempt.status().code(), StatusCode::kUnavailable);
      }
    }

    RecoveryReport report;
    auto opened = OpenShard(&spec, store_options, dir.string(), &report);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();

    if (!committed->torn) {
      EXPECT_FALSE(report.torn_tail);
      EXPECT_EQ(report.ops_discarded, 0u);
    } else {
      EXPECT_TRUE(report.torn_tail);
      EXPECT_EQ(report.ops_discarded, 1u);  // the sentinel record
    }
    // The durable prefix: everything up to the commit, minus ops the
    // tear discarded, but never below what segments already cover.
    const size_t effective =
        std::max<size_t>(committed->op_count - report.ops_discarded,
                         committed->refreshed_seq);

    ShardStore reference(&spec, Manual());
    for (size_t i = 0; i < effective; ++i) {
      ASSERT_TRUE(reference.Apply(ops[i]).ok());
    }
    reference.Refresh();
    (*opened)->Refresh();
    ExpectSameLiveSet(reference, **opened, sentinel_record);

    // Idempotent re-recovery: identical report, identical state.
    RecoveryReport again;
    auto reopened = OpenShard(&spec, store_options, dir.string(), &again);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(again.segments_loaded, report.segments_loaded);
    EXPECT_EQ(again.ops_replayed, report.ops_replayed);
    EXPECT_EQ(again.ops_skipped, report.ops_skipped);
    EXPECT_EQ(again.ops_discarded, report.ops_discarded);
    EXPECT_EQ(again.torn_tail, report.torn_tail);
    (*reopened)->Refresh();
    ExpectSameLiveSet(**opened, **reopened, sentinel_record);

    std::error_code ec;
    fs::remove_all(dir, ec);
    if (::testing::Test::HasFailure()) break;  // keep the seed visible
  }
}

}  // namespace
}  // namespace esdb
