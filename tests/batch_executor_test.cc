// Parity fuzzer for the vectorized batch executor: every query shape
// the engine supports, run through BOTH engines over the same pinned
// snapshot, must produce byte-identical results (rows compared by
// serialized bytes, aggregates by exact value and type). Randomized
// but seeded — failures reproduce.

#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "cluster/esdb.h"
#include "common/random.h"
#include "query/batch/filter.h"
#include "query/batch/slot.h"
#include "query/executor.h"
#include "query/normalize.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "storage/shard_store.h"

namespace esdb {
namespace {

IndexSpec FuzzSpec() {
  IndexSpec spec;
  spec.text_fields = {"title"};
  spec.composite_indexes = {{"tenant_id", "created_time"}};
  spec.scan_fields = {"status", "flag", "group", "amount", "mixed"};
  spec.indexed_sub_attributes = {"activity"};
  return spec;
}

// Deterministic store with the value shapes the slot engine must get
// right: nulls (columns randomly absent per doc), a mixed-type column
// (int/double/string in one column), doubles, negative ints, text,
// and attribute strings. Refreshes every `refresh_every` docs so the
// snapshot holds several segments.
std::unique_ptr<ShardStore> BuildFuzzStore(const IndexSpec* spec,
                                           int num_docs, uint64_t seed,
                                           int refresh_every = 61) {
  ShardStore::Options options;
  options.refresh_doc_count = 0;
  options.merge.max_segments = 1000;  // keep segments fragmented
  auto store = std::make_unique<ShardStore>(spec, options);
  Rng rng(seed);
  const char* titles[] = {"classic novel", "cotton shirt", "novel lamp",
                          "steel bottle", "gaming keyboard"};
  const char* activities[] = {"promo", "none", "festival"};
  for (int i = 0; i < num_docs; ++i) {
    WriteOp op;
    op.type = OpType::kInsert;
    op.doc.Set(kFieldTenantId, Value(int64_t(1 + rng.Uniform(5))));
    op.doc.Set(kFieldRecordId, Value(int64_t(i)));
    op.doc.Set(kFieldCreatedTime, Value(int64_t(rng.Uniform(1000))));
    if (rng.Bernoulli(0.9)) {
      op.doc.Set("status", Value(int64_t(rng.Uniform(4))));
    }
    op.doc.Set("flag", Value(int64_t(rng.Uniform(2))));
    op.doc.Set("group", Value(int64_t(rng.Uniform(20)) - 10));
    if (rng.Bernoulli(0.85)) {
      op.doc.Set("amount", Value(double(rng.Uniform(1000)) / 10.0));
    }
    // One column, three runtime types: defeats every uniform-column
    // fast path and forces the generic slot loop.
    const uint32_t mix = rng.Uniform(4);
    if (mix == 0) {
      op.doc.Set("mixed", Value(int64_t(rng.Uniform(100))));
    } else if (mix == 1) {
      op.doc.Set("mixed", Value(double(rng.Uniform(100)) + 0.5));
    } else if (mix == 2) {
      op.doc.Set("mixed", Value("m" + std::to_string(rng.Uniform(5))));
    }  // mix == 3: absent (null)
    op.doc.Set("title", Value(std::string(titles[rng.Uniform(5)])));
    if (rng.Bernoulli(0.8)) {
      std::string attrs =
          "activity:" + std::string(activities[rng.Uniform(3)]);
      if (rng.Bernoulli(0.5)) {
        attrs += ";attr" + std::to_string(rng.Uniform(4)) + ":v" +
                 std::to_string(rng.Uniform(6));
      }
      op.doc.Set(kFieldAttributes, Value(std::move(attrs)));
    }
    EXPECT_TRUE(store->Apply(op).ok());
    if (i % refresh_every == refresh_every - 1) store->Refresh();
  }
  store->Refresh();
  return store;
}

Query ParseQuery(const std::string& sql) {
  auto q = ParseSql(sql);
  EXPECT_TRUE(q.ok()) << sql << ": " << q.status().ToString();
  return std::move(q).value();
}

// Strict byte-level equality: serialized rows, typed aggregate values
// (Value::operator== is Compare-based and would let an int-1 pass for
// a double-1.0), identical group maps.
void ExpectIdenticalResults(const QueryResult& row, const QueryResult& batch,
                            const std::string& label) {
  ASSERT_EQ(row.rows.size(), batch.rows.size()) << label;
  for (size_t i = 0; i < row.rows.size(); ++i) {
    EXPECT_EQ(row.rows[i].Serialize(), batch.rows[i].Serialize())
        << label << " row " << i;
  }
  EXPECT_EQ(row.total_matched, batch.total_matched) << label;
  EXPECT_EQ(row.agg_count, batch.agg_count) << label;
  EXPECT_EQ(row.agg_sum, batch.agg_sum) << label;  // exact, same fold order
  ASSERT_EQ(row.agg_min.has_value(), batch.agg_min.has_value()) << label;
  if (row.agg_min.has_value()) {
    EXPECT_TRUE(row.agg_min->type() == batch.agg_min->type() &&
                *row.agg_min == *batch.agg_min)
        << label;
  }
  ASSERT_EQ(row.agg_max.has_value(), batch.agg_max.has_value()) << label;
  if (row.agg_max.has_value()) {
    EXPECT_TRUE(row.agg_max->type() == batch.agg_max->type() &&
                *row.agg_max == *batch.agg_max)
        << label;
  }
  ASSERT_EQ(row.groups.size(), batch.groups.size()) << label;
  auto rit = row.groups.begin();
  auto bit = batch.groups.begin();
  for (; rit != row.groups.end(); ++rit, ++bit) {
    EXPECT_TRUE(rit->first.type() == bit->first.type() &&
                rit->first == bit->first)
        << label << " group key";
    EXPECT_EQ(rit->second.count, bit->second.count) << label;
    EXPECT_EQ(rit->second.sum, bit->second.sum) << label;
    ASSERT_EQ(rit->second.min.has_value(), bit->second.min.has_value());
    if (rit->second.min.has_value()) {
      EXPECT_TRUE(*rit->second.min == *bit->second.min) << label;
    }
    ASSERT_EQ(rit->second.max.has_value(), bit->second.max.has_value());
    if (rit->second.max.has_value()) {
      EXPECT_TRUE(*rit->second.max == *bit->second.max) << label;
    }
  }
}

// Runs one query through both engines over the SAME snapshot, under
// both planner configurations, and demands identical candidates
// (per-segment posting lists), identical single-phase results, and
// identical two-phase row refs.
void ExpectEngineParity(const ShardStore& store, const IndexSpec& spec,
                        const std::string& sql) {
  const Query query = ParseQuery(sql);
  const SegmentSnapshot snapshot = store.Snapshot();
  ExecOptions row_opts;
  ExecOptions batch_opts;
  batch_opts.batch_execution = true;

  PlannerOptions rbo;
  PlannerOptions baseline;
  baseline.use_composite_index = false;
  baseline.use_scan_list = false;
  for (const PlannerOptions& planner : {rbo, baseline}) {
    std::unique_ptr<Expr> normalized;
    if (query.where != nullptr) {
      normalized = NormalizeForPlanning(query.where->Clone());
    }
    const auto plan = PlanWhere(normalized.get(), spec, planner);

    // Plan-level parity: the filtered candidate lists themselves.
    for (const SegmentView& view : *snapshot) {
      ExecStats s1, s2;
      auto row_list = EvalPlan(*plan, view, &s1, row_opts);
      auto batch_list = EvalPlan(*plan, view, &s2, batch_opts);
      ASSERT_TRUE(row_list.ok() && batch_list.ok()) << sql;
      EXPECT_TRUE(*row_list == *batch_list) << sql;
      EXPECT_EQ(s1.docs_filtered, s2.docs_filtered) << sql;
    }

    // Single-phase execution parity.
    ExecStats row_stats, batch_stats;
    auto row_result =
        ExecuteOnShard(query, *plan, *snapshot, &row_stats, nullptr, 0,
                       row_opts);
    auto batch_result =
        ExecuteOnShard(query, *plan, *snapshot, &batch_stats, nullptr, 0,
                       batch_opts);
    ASSERT_TRUE(row_result.ok()) << sql << ": "
                                 << row_result.status().ToString();
    ASSERT_TRUE(batch_result.ok()) << sql << ": "
                                   << batch_result.status().ToString();
    ExpectIdenticalResults(*row_result, *batch_result, sql);

    // Two-phase query-phase parity (row queries only).
    if (query.agg == AggFunc::kNone && query.group_by.empty()) {
      ExecStats qs1, qs2;
      uint64_t m1 = 0, m2 = 0;
      auto refs1 = ExecuteQueryPhase(query, *plan, *snapshot, 0, &qs1, &m1,
                                     nullptr, nullptr, 0, row_opts);
      auto refs2 = ExecuteQueryPhase(query, *plan, *snapshot, 0, &qs2, &m2,
                                     nullptr, nullptr, 0, batch_opts);
      ASSERT_TRUE(refs1.ok() && refs2.ok()) << sql;
      EXPECT_EQ(m1, m2) << sql;
      ASSERT_EQ(refs1->size(), refs2->size()) << sql;
      for (size_t i = 0; i < refs1->size(); ++i) {
        const RowRef& a = (*refs1)[i];
        const RowRef& b = (*refs2)[i];
        EXPECT_EQ(a.segment_ordinal, b.segment_ordinal) << sql;
        EXPECT_EQ(a.doc, b.doc) << sql;
        ASSERT_EQ(a.sort_keys.size(), b.sort_keys.size()) << sql;
        for (size_t k = 0; k < a.sort_keys.size(); ++k) {
          EXPECT_TRUE(a.sort_keys[k].type() == b.sort_keys[k].type() &&
                      a.sort_keys[k] == b.sort_keys[k])
              << sql << " sort key " << k;
        }
      }
    }
  }
}

class BatchExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = FuzzSpec();
    store_ = BuildFuzzStore(&spec_, 700, 4242);
  }

  IndexSpec spec_;
  std::unique_ptr<ShardStore> store_;
};

TEST_F(BatchExecutorTest, FixedQueryShapes) {
  const char* sqls[] = {
      // Composite + residual filters (the paper's workload shape).
      "SELECT * FROM t WHERE tenant_id = 1 AND created_time BETWEEN 100 AND "
      "700 AND status = 2 AND amount >= 30.5",
      // Pure scan paths: int range, double range, IN set, negation.
      "SELECT * FROM t WHERE status >= 1 AND status < 3",
      "SELECT * FROM t WHERE amount > 42.5 AND amount <= 77.0",
      "SELECT * FROM t WHERE group IN (-3, 0, 4, 7)",
      "SELECT * FROM t WHERE status != 2 AND flag = 1",
      "SELECT * FROM t WHERE NOT (status = 1 OR group > 5)",
      // Int column vs double literal and vice versa (cross-type
      // compare must stay exact).
      "SELECT * FROM t WHERE group >= -2.5",
      "SELECT * FROM t WHERE amount = 50",
      "SELECT * FROM t WHERE created_time BETWEEN 100 AND 900.5",
      // Mixed-type column: generic slot path.
      "SELECT * FROM t WHERE mixed > 10",
      "SELECT * FROM t WHERE mixed = 'm2'",
      "SELECT * FROM t WHERE mixed IS NULL",
      "SELECT * FROM t WHERE mixed IS NOT NULL",
      // Nulls / missing columns.
      "SELECT * FROM t WHERE status IS NULL",
      "SELECT * FROM t WHERE amount IS NOT NULL AND amount < 20",
      "SELECT * FROM t WHERE no_such_column = 5",
      "SELECT * FROM t WHERE no_such_column IS NULL",
      // Sub-attributes, indexed and scanned.
      "SELECT * FROM t WHERE attributes.activity = 'promo'",
      "SELECT * FROM t WHERE attributes.attr2 = 'v3'",
      "SELECT * FROM t WHERE attributes.attr1 IS NOT NULL AND flag = 0",
      // Text: MATCH and LIKE.
      "SELECT * FROM t WHERE MATCH(title, 'novel')",
      "SELECT * FROM t WHERE title LIKE '%cotton%'",
      // Union / intersect plan shapes.
      "SELECT * FROM t WHERE status = 1 OR group = 3 OR flag = 0",
      "SELECT * FROM t WHERE (status = 1 OR status = 3) AND (flag = 1 OR "
      "group < 0)",
      // Aggregates and GROUP BY.
      "SELECT COUNT(*) FROM t WHERE status = 1",
      "SELECT SUM(amount) FROM t WHERE tenant_id = 2",
      "SELECT MIN(mixed) FROM t",
      "SELECT MAX(mixed) FROM t WHERE flag = 1",
      "SELECT COUNT(*) FROM t GROUP BY status",
      "SELECT SUM(amount) FROM t GROUP BY status",
      "SELECT AVG(amount) FROM t WHERE created_time > 300 GROUP BY mixed",
      // ORDER BY / LIMIT through sort-key resolution.
      "SELECT * FROM t WHERE status = 2 ORDER BY created_time DESC LIMIT 10",
      "SELECT * FROM t WHERE flag = 1 ORDER BY amount LIMIT 7",
  };
  for (const char* sql : sqls) ExpectEngineParity(*store_, spec_, sql);
}

// Seeded random query generator: composite ranges, every scalar
// operator, sub-attributes, unions, aggregates, sorts.
TEST_F(BatchExecutorTest, RandomizedParityFuzz) {
  Rng rng(20260808);
  for (int trial = 0; trial < 120; ++trial) {
    std::string sql = "SELECT ";
    const bool grouped = rng.Bernoulli(0.2);
    const bool agg = grouped || rng.Bernoulli(0.15);
    if (agg) {
      const char* funcs[] = {"COUNT(*)", "SUM(amount)", "MIN(amount)",
                             "MAX(mixed)", "AVG(amount)"};
      sql += funcs[rng.Uniform(5)];
    } else {
      sql += "*";
    }
    sql += " FROM t WHERE ";
    std::vector<std::string> preds;
    if (rng.Bernoulli(0.7)) {
      preds.push_back("tenant_id = " + std::to_string(1 + rng.Uniform(5)));
    }
    if (rng.Bernoulli(0.5)) {
      const int64_t lo = int64_t(rng.Uniform(800));
      preds.push_back("created_time BETWEEN " + std::to_string(lo) + " AND " +
                      std::to_string(lo + int64_t(rng.Uniform(400))));
    }
    const int extra = 1 + int(rng.Uniform(3));
    for (int i = 0; i < extra; ++i) {
      const uint32_t pick = rng.Uniform(10);
      switch (pick) {
        case 0:
          preds.push_back("status = " + std::to_string(rng.Uniform(5)));
          break;
        case 1:
          preds.push_back("status >= " + std::to_string(rng.Uniform(4)));
          break;
        case 2:
          preds.push_back("group < " +
                          std::to_string(int64_t(rng.Uniform(20)) - 10));
          break;
        case 3: {
          const double a = double(rng.Uniform(1000)) / 10.0;
          preds.push_back("amount " +
                          std::string(rng.Bernoulli(0.5) ? ">=" : "<") + " " +
                          std::to_string(a));
          break;
        }
        case 4:
          preds.push_back("group IN (" +
                          std::to_string(int64_t(rng.Uniform(20)) - 10) +
                          ", " +
                          std::to_string(int64_t(rng.Uniform(20)) - 10) +
                          ")");
          break;
        case 5:
          preds.push_back("flag != " + std::to_string(rng.Uniform(2)));
          break;
        case 6:
          preds.push_back("mixed " +
                          std::string(rng.Bernoulli(0.5) ? ">" : "<=") + " " +
                          std::to_string(rng.Uniform(100)));
          break;
        case 7:
          preds.push_back("attributes.attr" + std::to_string(rng.Uniform(4)) +
                          " = 'v" + std::to_string(rng.Uniform(6)) + "'");
          break;
        case 8:
          preds.push_back(std::string(rng.Bernoulli(0.5) ? "amount" : "mixed") +
                          (rng.Bernoulli(0.5) ? " IS NULL" : " IS NOT NULL"));
          break;
        default:
          preds.push_back("NOT (status = " + std::to_string(rng.Uniform(4)) +
                          " OR flag = " + std::to_string(rng.Uniform(2)) +
                          ")");
          break;
      }
    }
    if (preds.empty()) preds.push_back("status >= 0");
    for (size_t i = 0; i < preds.size(); ++i) {
      if (i > 0) sql += rng.Bernoulli(0.8) ? " AND " : " OR ";
      sql += preds[i];
    }
    if (grouped) {
      sql += " GROUP BY ";
      sql += rng.Bernoulli(0.5) ? "status" : "mixed";
    } else if (!agg && rng.Bernoulli(0.4)) {
      sql += " ORDER BY created_time DESC LIMIT ";
      sql += std::to_string(1 + rng.Uniform(30));
    }
    ExpectEngineParity(*store_, spec_, sql);
  }
}

// Tombstone overlays arriving mid-stream: parity must hold on a
// snapshot whose candidate batches are riddled with deleted docs, and
// an older pinned snapshot must keep its frozen live set.
TEST_F(BatchExecutorTest, ParityAcrossTombstoneOverlays) {
  const SegmentSnapshot before = store_->Snapshot();
  Rng rng(99);
  int deleted = 0;
  for (int i = 0; i < 700; ++i) {
    if (rng.Bernoulli(0.3)) {
      WriteOp op;
      op.type = OpType::kDelete;
      op.doc.Set(kFieldRecordId, Value(int64_t(i)));
      if (store_->Apply(op).ok()) ++deleted;
    }
  }
  ASSERT_GT(deleted, 100);
  const char* sqls[] = {
      "SELECT * FROM t WHERE status >= 1",
      "SELECT * FROM t WHERE tenant_id = 3 AND created_time BETWEEN 0 AND "
      "900 AND amount > 10",
      "SELECT COUNT(*) FROM t GROUP BY status",
      "SELECT SUM(amount) FROM t WHERE flag = 1",
  };
  for (const char* sql : sqls) ExpectEngineParity(*store_, spec_, sql);

  // The old snapshot still sees every doc, on both engines.
  const Query q = ParseQuery("SELECT COUNT(*) FROM t");
  const auto plan = PlanWhere(nullptr, spec_, PlannerOptions{});
  for (const bool batch : {false, true}) {
    ExecOptions opts;
    opts.batch_execution = batch;
    ExecStats stats;
    auto result = ExecuteOnShard(q, *plan, *before, &stats, nullptr, 0, opts);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->agg_count, 700u);
  }
}

// End-to-end through the cluster layer: SetBatchExecution(true) must
// not change a single byte of any result. Filter cache off so the
// batch run cannot reuse row-computed candidate lists.
TEST(BatchExecutorClusterTest, EndToEndParity) {
  Esdb::Options options;
  options.num_shards = 4;
  options.routing = RoutingKind::kHash;
  options.use_filter_cache = false;
  options.store.refresh_doc_count = 0;
  Esdb db(options);
  Rng rng(777);
  for (int i = 0; i < 400; ++i) {
    Document doc;
    doc.Set(kFieldTenantId, Value(int64_t(1 + rng.Uniform(20))));
    doc.Set(kFieldRecordId, Value(int64_t(i)));
    doc.Set(kFieldCreatedTime, Value(int64_t(rng.Uniform(1000))));
    doc.Set("status", Value(int64_t(rng.Uniform(4))));
    doc.Set("amount", Value(double(rng.Uniform(500)) / 5.0));
    ASSERT_TRUE(db.Insert(std::move(doc)).ok());
  }
  db.RefreshAll();
  const char* sqls[] = {
      "SELECT * FROM t WHERE tenant_id = 3 AND created_time BETWEEN 100 AND "
      "800 ORDER BY created_time DESC LIMIT 20",
      "SELECT * FROM t WHERE status = 2 AND amount >= 40.0",
      "SELECT COUNT(*) FROM t WHERE amount < 55.5",
      "SELECT SUM(amount) FROM t GROUP BY status",
  };
  for (const char* sql : sqls) {
    db.SetBatchExecution(false);
    auto row = db.ExecuteSql(sql);
    ASSERT_TRUE(row.ok()) << sql;
    db.SetBatchExecution(true);
    auto batch = db.ExecuteSql(sql);
    ASSERT_TRUE(batch.ok()) << sql;
    ExpectIdenticalResults(*row, *batch, sql);
    // Batch counters actually moved (the engine really ran).
    const ExecStats stats = db.last_stats();
    if (stats.docs_filtered > 0) {
      EXPECT_GT(stats.batches_evaluated, 0u) << sql;
    }
  }
}

// The slot mirror itself: CompareSlotValue and EvalPredSlot must
// agree with Value::Compare / Predicate::Eval on random value pairs,
// including Nothing vs null and cross-type ranks.
TEST(SlotMirrorTest, AgreesWithValueSemantics) {
  Rng rng(31337);
  std::deque<std::string> pool;  // stable addresses for string slots
  const auto random_value = [&]() -> Value {
    switch (rng.Uniform(5)) {
      case 0:
        return Value::Null();
      case 1:
        return Value(rng.Bernoulli(0.5));
      case 2:
        return Value(int64_t(rng.Uniform(200)) - 100);
      case 3:
        return Value(double(int64_t(rng.Uniform(200)) - 100) / 3.0);
      default:
        return Value("s" + std::to_string(rng.Uniform(8)));
    }
  };
  const auto to_slot = [&pool](const Value& v) -> batch::TypedSlot {
    using batch::SlotTag;
    using batch::TypedSlot;
    if (v.is_null()) return TypedSlot::Nothing();
    if (v.is_bool()) return TypedSlot{SlotTag::kBool, v.as_bool() ? 1u : 0u};
    if (v.is_int()) return TypedSlot{SlotTag::kInt, uint64_t(v.as_int())};
    if (v.is_double()) {
      uint64_t bits;
      const double d = v.as_double();
      std::memcpy(&bits, &d, sizeof(bits));
      return TypedSlot{SlotTag::kDouble, bits};
    }
    pool.push_back(v.as_string());
    return TypedSlot{SlotTag::kString, uint64_t(uintptr_t(&pool.back()))};
  };
  const auto sign = [](int c) { return c < 0 ? -1 : (c > 0 ? 1 : 0); };

  for (int trial = 0; trial < 2000; ++trial) {
    const Value a = random_value();
    const Value b = random_value();
    const batch::TypedSlot slot = to_slot(a);
    EXPECT_EQ(sign(batch::CompareSlotValue(slot, b)), sign(a.Compare(b)))
        << a.ToString() << " vs " << b.ToString();
    EXPECT_TRUE(batch::SlotToValue(slot) == a);
    EXPECT_EQ(batch::SlotToValue(slot).type(), a.type());

    Predicate pred;
    pred.column = "c";
    const PredOp ops[] = {PredOp::kEq, PredOp::kNe,      PredOp::kLt,
                          PredOp::kLe, PredOp::kGt,      PredOp::kGe,
                          PredOp::kBetween, PredOp::kIn, PredOp::kLike,
                          PredOp::kMatch,   PredOp::kIsNull,
                          PredOp::kIsNotNull};
    pred.op = ops[rng.Uniform(12)];
    pred.args.push_back(b);
    if (pred.op == PredOp::kBetween || rng.Bernoulli(0.3)) {
      pred.args.push_back(random_value());
    }
    if (pred.op == PredOp::kLike || pred.op == PredOp::kMatch) {
      pred.args[0] = Value("s" + std::to_string(rng.Uniform(8)));
    }
    EXPECT_EQ(batch::EvalPredSlot(pred, slot), pred.Eval(a))
        << pred.ToString() << " on " << a.ToString();
  }
}

// The attribute sidecar must answer exactly like parsing the raw
// attributes string per doc.
TEST_F(BatchExecutorTest, SidecarMatchesStringParsing) {
  const SegmentSnapshot snapshot = store_->Snapshot();
  for (const SegmentView& view : *snapshot) {
    const AttributeSidecar* sidecar = view->attribute_sidecar();
    ASSERT_NE(sidecar, nullptr);
    for (DocId id = 0; id < DocId(view->num_docs()); ++id) {
      auto doc = view->GetDocument(id);
      ASSERT_TRUE(doc.ok());
      const Value& raw = doc->Get(kFieldAttributes);
      const auto parsed =
          raw.is_string() ? ParseAttributes(raw.as_string())
                          : std::map<std::string, std::string>{};
      for (const char* key : {"activity", "attr0", "attr1", "attr2", "attr3",
                              "nope"}) {
        const std::string* got = sidecar->GetByName(id, key);
        const auto it = parsed.find(key);
        if (it == parsed.end()) {
          EXPECT_EQ(got, nullptr) << "doc " << id << " key " << key;
        } else {
          ASSERT_NE(got, nullptr) << "doc " << id << " key " << key;
          EXPECT_EQ(*got, it->second);
        }
      }
    }
  }
}

}  // namespace
}  // namespace esdb
