#include <gtest/gtest.h>

#include "cluster/esdb.h"
#include "common/random.h"
#include "query/parser.h"

namespace esdb {
namespace {

TEST(GroupByParseTest, BasicShape) {
  auto q = ParseSql(
      "SELECT status, COUNT(*) FROM t WHERE tenant_id = 1 GROUP BY status");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->group_by, "status");
  EXPECT_EQ(q->agg, AggFunc::kCount);
  EXPECT_EQ(q->select_columns, std::vector<std::string>{"status"});
}

TEST(GroupByParseTest, AggregateOnly) {
  auto q = ParseSql("SELECT SUM(amount) FROM t GROUP BY status");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->agg, AggFunc::kSum);
  EXPECT_EQ(q->agg_column, "amount");
}

TEST(GroupByParseTest, RejectsInvalidShapes) {
  // Non-grouped plain column.
  EXPECT_FALSE(
      ParseSql("SELECT flag, COUNT(*) FROM t GROUP BY status").ok());
  // GROUP BY without an aggregate.
  EXPECT_FALSE(ParseSql("SELECT status FROM t GROUP BY status").ok());
  // Mixed column + aggregate without GROUP BY.
  EXPECT_FALSE(ParseSql("SELECT status, COUNT(*) FROM t").ok());
  // Two aggregates.
  EXPECT_FALSE(
      ParseSql("SELECT COUNT(*), SUM(a) FROM t GROUP BY b").ok());
}

TEST(GroupByParseTest, ToStringRoundTrips) {
  auto q = ParseSql(
      "SELECT status, AVG(amount) FROM t WHERE tenant_id = 1 "
      "GROUP BY status");
  ASSERT_TRUE(q.ok());
  auto q2 = ParseSql(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString();
  EXPECT_EQ(q->ToString(), q2->ToString());
}

class GroupByExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Esdb::Options options;
    options.num_shards = 8;
    options.routing = RoutingKind::kDynamic;
    options.store.refresh_doc_count = 0;
    db_ = std::make_unique<Esdb>(std::move(options));
    Rng rng(7);
    for (int64_t i = 0; i < 400; ++i) {
      Document doc;
      doc.Set(kFieldTenantId, Value(int64_t(1 + i % 4)));
      doc.Set(kFieldRecordId, Value(i));
      doc.Set(kFieldCreatedTime, Value(i));
      const int64_t status = int64_t(rng.Uniform(3));
      doc.Set("status", Value(status));
      doc.Set("amount", Value(double(status * 10 + 1)));
      ASSERT_TRUE(db_->Insert(std::move(doc)).ok());
      expected_count_[status]++;
      expected_sum_[status] += double(status * 10 + 1);
    }
    db_->RefreshAll();
  }

  std::unique_ptr<Esdb> db_;
  std::map<int64_t, uint64_t> expected_count_;
  std::map<int64_t, double> expected_sum_;
};

TEST_F(GroupByExecTest, CountsPerGroupAcrossShards) {
  auto result =
      db_->ExecuteSql("SELECT status, COUNT(*) FROM t GROUP BY status");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->groups.size(), 3u);
  for (const auto& [key, group] : result->groups) {
    EXPECT_EQ(group.count, expected_count_[key.as_int()]);
  }
}

TEST_F(GroupByExecTest, SumAndAvgPerGroup) {
  auto result = db_->ExecuteSql(
      "SELECT status, AVG(amount) FROM t WHERE tenant_id IN (1, 2, 3, 4) "
      "GROUP BY status");
  ASSERT_TRUE(result.ok());
  for (const auto& [key, group] : result->groups) {
    const int64_t status = key.as_int();
    EXPECT_NEAR(group.sum, expected_sum_[status], 1e-9);
    EXPECT_NEAR(group.Avg(), double(status * 10 + 1), 1e-9);
    EXPECT_EQ(group.min->NumericValue(), double(status * 10 + 1));
  }
}

TEST_F(GroupByExecTest, TenantScopedGrouping) {
  auto result = db_->ExecuteSql(
      "SELECT status, COUNT(*) FROM t WHERE tenant_id = 1 GROUP BY status");
  ASSERT_TRUE(result.ok());
  uint64_t total = 0;
  for (const auto& [key, group] : result->groups) total += group.count;
  EXPECT_EQ(total, 100u);  // tenant 1 owns a quarter of 400 docs
}

TEST_F(GroupByExecTest, MissingColumnGroupsUnderNull) {
  auto result =
      db_->ExecuteSql("SELECT COUNT(*) FROM t GROUP BY nonexistent");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->groups.size(), 1u);
  EXPECT_TRUE(result->groups.begin()->first.is_null());
  EXPECT_EQ(result->groups.begin()->second.count, 400u);
}

}  // namespace
}  // namespace esdb
