// Concurrency smoke tests for the parallel shard fan-out: parallel
// execution must be byte-identical to serial execution, and a shared
// Esdb must serve queries from many client threads at once (writers
// stay externally serialized — the engine's single-writer contract).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "cluster/esdb.h"

namespace esdb {
namespace {

Esdb::Options BaseOptions(uint32_t query_threads) {
  Esdb::Options options;
  options.num_shards = 16;
  options.routing = RoutingKind::kHash;
  options.store.refresh_doc_count = 0;  // manual refresh
  options.query_threads = query_threads;
  return options;
}

void Load(Esdb* db, int docs) {
  for (int64_t i = 0; i < docs; ++i) {
    Document doc;
    doc.Set(kFieldTenantId, Value(int64_t(1 + i % 40)));
    doc.Set(kFieldRecordId, Value(i));
    doc.Set(kFieldCreatedTime, Value(i));
    doc.Set("status", Value(i % 5));
    doc.Set("amount", Value(i % 997));
    doc.Set("group", Value(i % 50));
    ASSERT_TRUE(db->Insert(std::move(doc)).ok());
    // A few refreshes along the way so shards hold several segments.
    if (i % 1500 == 1499) db->RefreshAll();
  }
  db->RefreshAll();
}

// Query mix covering both execution paths: two-phase rows (sorted and
// unsorted, tenant-scoped and broadcast) and single-phase aggregates
// and group-bys.
std::vector<std::string> QueryMix() {
  return {
      // Broadcast (all 16 shards), two-phase with global sort.
      "SELECT * FROM t WHERE amount >= 400 AND status = 2 "
      "ORDER BY created_time DESC LIMIT 25",
      // Broadcast with offset pagination.
      "SELECT * FROM t WHERE status = 1 ORDER BY amount, created_time "
      "LIMIT 10 OFFSET 5",
      // Tenant-scoped rows.
      "SELECT * FROM t WHERE tenant_id = 3 ORDER BY created_time LIMIT 50",
      // Unsorted with early stop.
      "SELECT * FROM t WHERE tenant_id = 7 AND status = 4 LIMIT 5",
      // Single-phase: aggregates and group-by.
      "SELECT COUNT(*) FROM t WHERE status = 3",
      "SELECT SUM(amount) FROM t WHERE group = 10",
      "SELECT MAX(amount) FROM t WHERE tenant_id = 5",
  };
}

void ExpectSameResult(const QueryResult& expect, const QueryResult& got,
                      const std::string& sql) {
  EXPECT_EQ(expect.total_matched, got.total_matched) << sql;
  EXPECT_EQ(expect.agg_count, got.agg_count) << sql;
  EXPECT_EQ(expect.agg_sum, got.agg_sum) << sql;
  ASSERT_EQ(expect.rows.size(), got.rows.size()) << sql;
  for (size_t i = 0; i < expect.rows.size(); ++i) {
    EXPECT_EQ(expect.rows[i], got.rows[i]) << sql << " row " << i;
  }
  ASSERT_EQ(expect.groups.size(), got.groups.size()) << sql;
}

TEST(ParallelQueryTest, ParallelMatchesSerialByteForByte) {
  Esdb db(BaseOptions(/*query_threads=*/4));
  Load(&db, 6000);

  for (const std::string& sql : QueryMix()) {
    db.SetQueryThreads(0);
    auto serial = db.ExecuteSql(sql);
    ASSERT_TRUE(serial.ok()) << sql << ": " << serial.status().ToString();
    const ExecStats serial_stats = db.last_stats();

    db.SetQueryThreads(4);
    auto parallel = db.ExecuteSql(sql);
    ASSERT_TRUE(parallel.ok()) << sql << ": " << parallel.status().ToString();
    const ExecStats parallel_stats = db.last_stats();

    ExpectSameResult(*serial, *parallel, sql);
    // Stats merge in shard-ordinal order: totals agree exactly except
    // for cache-hit-dependent counters; segments visited is
    // deterministic.
    EXPECT_EQ(serial_stats.segments_visited,
              parallel_stats.segments_visited)
        << sql;
  }
}

TEST(ParallelQueryTest, SerialDefaultUnchanged) {
  Esdb db(BaseOptions(/*query_threads=*/0));
  EXPECT_EQ(db.query_threads(), 0u);
  Load(&db, 500);
  auto r = db.ExecuteSql("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->agg_count, 500u);
}

// N client threads hammer one shared Esdb (with an internal subquery
// pool) and every thread checks its answers against the serial
// engine's. Run under TSan in CI.
TEST(ParallelQueryTest, ConcurrentClientsMatchSerial) {
  Esdb db(BaseOptions(/*query_threads=*/4));
  Load(&db, 6000);
  const std::vector<std::string> sqls = QueryMix();

  // Expected answers from the serial engine, before any concurrency.
  db.SetQueryThreads(0);
  std::vector<QueryResult> expected;
  expected.reserve(sqls.size());
  for (const std::string& sql : sqls) {
    auto r = db.ExecuteSql(sql);
    ASSERT_TRUE(r.ok()) << sql;
    expected.push_back(std::move(*r));
  }
  db.SetQueryThreads(4);

  constexpr int kClients = 6;
  constexpr int kRoundsPerClient = 8;
  std::atomic<int> mismatches{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRoundsPerClient; ++round) {
        const size_t q = size_t(c + round) % sqls.size();
        auto r = db.ExecuteSql(sqls[q]);
        if (!r.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const QueryResult& expect = expected[q];
        if (r->rows != expect.rows ||
            r->total_matched != expect.total_matched ||
            r->agg_count != expect.agg_count ||
            r->agg_sum != expect.agg_sum) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
}

// Regression: SetQueryThreads used to destroy the old pool while
// in-flight queries still held a raw pointer to it (use-after-free).
// The pool now swaps through a shared_ptr each query pins for its
// full duration. Hammer resizes from one thread while clients query.
// Run under TSan in CI.
TEST(ParallelQueryTest, SetQueryThreadsDuringInFlightQueries) {
  Esdb db(BaseOptions(/*query_threads=*/4));
  Load(&db, 3000);
  const std::vector<std::string> sqls = QueryMix();

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  constexpr int kClients = 4;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      int round = 0;
      while (!done.load(std::memory_order_acquire)) {
        const size_t q = size_t(c + round++) % sqls.size();
        if (!db.ExecuteSql(sqls[q]).ok()) failures.fetch_add(1);
      }
    });
  }
  // Resize the pool through every interesting shape, repeatedly:
  // serial <-> small pool <-> bigger pool. Each store drops the only
  // owning reference besides the pins held by in-flight queries.
  for (int i = 0; i < 40; ++i) {
    db.SetQueryThreads(uint32_t(i % 3 == 0 ? 0 : (i % 3) * 2));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Engine still healthy on whatever pool the last resize installed.
  auto r = db.ExecuteSql("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->agg_count, 3000u);
}

}  // namespace
}  // namespace esdb
