// Robustness sweeps: every decoder and parser in the public surface
// must reject arbitrary byte garbage with a clean Status — no crash,
// no UB, no trailing-state corruption. These are cheap deterministic
// fuzz-ish property tests (fixed seeds, thousands of inputs).

#include <gtest/gtest.h>

#include "common/random.h"
#include "document/document.h"
#include "document/json.h"
#include "query/dsl.h"
#include "query/parser.h"
#include "routing/rule_list.h"
#include "storage/segment.h"
#include "storage/translog.h"

namespace esdb {
namespace {

std::string RandomBytes(Rng& rng, size_t max_len) {
  std::string out;
  const size_t len = rng.Uniform(max_len + 1);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) out.push_back(char(rng.Uniform(256)));
  return out;
}

// Printable garbage: exercises parser token paths more than raw bytes.
std::string RandomText(Rng& rng, size_t max_len) {
  static constexpr char kAlphabet[] =
      "abcdefgSELECT FROM WHERE AND OR NOT ()=<>!'\",.*0123456789_%{}[]:";
  std::string out;
  const size_t len = rng.Uniform(max_len + 1);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng.Uniform(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

TEST(FuzzTest, DocumentDecodeNeverCrashes) {
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    (void)Document::Deserialize(RandomBytes(rng, 64));
  }
}

TEST(FuzzTest, DocumentDecodeMutatedValidInput) {
  Document doc;
  doc.Set("a", Value(int64_t(5)));
  doc.Set("b", Value("text"));
  doc.Set("c", Value(1.5));
  const std::string valid = doc.Serialize();
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    std::string mutated = valid;
    const size_t pos = rng.Uniform(mutated.size());
    mutated[pos] = char(rng.Uniform(256));
    auto result = Document::Deserialize(mutated);
    // Either cleanly rejected or decoded to SOME document — both fine;
    // the property is no crash / no hang.
    (void)result;
  }
}

TEST(FuzzTest, SegmentDecodeNeverCrashes) {
  IndexSpec spec;
  spec.composite_indexes = {{"tenant_id", "created_time"}};
  SegmentBuilder builder(&spec);
  Document doc;
  doc.Set(kFieldTenantId, Value(int64_t(1)));
  doc.Set(kFieldRecordId, Value(int64_t(1)));
  doc.Set(kFieldCreatedTime, Value(int64_t(1)));
  builder.Add(doc);
  const std::string valid = std::move(builder).Build(1)->Encode();

  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    (void)Segment::Decode(RandomBytes(rng, 200));
  }
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = valid;
    mutated[rng.Uniform(mutated.size())] = char(rng.Uniform(256));
    (void)Segment::Decode(mutated);
  }
  // Truncations at every length.
  for (size_t len = 0; len < valid.size(); ++len) {
    (void)Segment::Decode(std::string_view(valid).substr(0, len));
  }
}

TEST(FuzzTest, WriteOpDecodeNeverCrashes) {
  Rng rng(4);
  for (int i = 0; i < 5000; ++i) {
    (void)WriteOp::Decode(RandomBytes(rng, 48));
  }
}

TEST(FuzzTest, RuleListDecodeNeverCrashes) {
  Rng rng(5);
  for (int i = 0; i < 5000; ++i) {
    (void)RuleList::Decode(RandomBytes(rng, 48));
  }
}

TEST(FuzzTest, SqlParserNeverCrashes) {
  Rng rng(6);
  for (int i = 0; i < 5000; ++i) {
    (void)ParseSql(RandomText(rng, 80));
    (void)ParseDml(RandomText(rng, 80));
  }
}

TEST(FuzzTest, JsonAndDslParsersNeverCrash) {
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    (void)FromJson(RandomText(rng, 80));
    (void)ParseDsl(RandomText(rng, 80));
  }
  for (int i = 0; i < 2000; ++i) {
    (void)FromJson(RandomBytes(rng, 60));
    (void)ParseDsl(RandomBytes(rng, 60));
  }
}

TEST(FuzzTest, DslDeepNestingBounded) {
  // Deeply nested bool clauses should parse (or fail) without stack
  // issues at reasonable depths.
  std::string dsl = R"({"query": )";
  const int depth = 200;
  for (int i = 0; i < depth; ++i) {
    dsl += R"({"bool": {"must": [)";
  }
  dsl += R"({"term": {"a": 1}})";
  for (int i = 0; i < depth; ++i) dsl += "]}}";
  dsl += "}";
  auto result = ParseDsl(dsl);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace esdb
