// Concurrency tests for epoch-published segment snapshots: one
// maintenance thread hammers RefreshAll (refresh + merge, optionally
// fanned out over the maintenance pool) while client threads query.
// Every query must observe a consistent per-shard epoch — a row count
// bracketed by refresh boundaries, never a torn segment list. Run
// under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/distributed.h"
#include "cluster/esdb.h"

namespace esdb {
namespace {

Esdb::Options HammerOptions(uint32_t query_threads,
                            uint32_t maintenance_threads) {
  Esdb::Options options;
  options.num_shards = 8;
  options.routing = RoutingKind::kHash;
  options.store.refresh_doc_count = 0;  // manual refresh only
  options.store.merge.max_segments = 4;  // force merges during the run
  options.query_threads = query_threads;
  options.maintenance_threads = maintenance_threads;
  return options;
}

Document MakeDoc(int64_t id) {
  Document doc;
  doc.Set(kFieldTenantId, Value(int64_t(1 + id % 20)));
  doc.Set(kFieldRecordId, Value(id));
  doc.Set(kFieldCreatedTime, Value(id));
  doc.Set("status", Value(id % 5));
  return doc;
}

// One writer inserts batches and refreshes; kReaders threads run
// broadcast counts and tenant-scoped queries throughout. Invariant:
// a count observed by a reader is >= the total published before the
// query began and <= the total inserted by the time it finished
// (fresh record ids only, so counts are monotone in refreshes).
void RunHammer(uint32_t query_threads, uint32_t maintenance_threads) {
  Esdb db(HammerOptions(query_threads, maintenance_threads));

  constexpr int kRounds = 12;
  constexpr int kBatch = 240;
  constexpr int kReaders = 4;

  std::atomic<uint64_t> published_total{0};  // visible after RefreshAll
  std::atomic<uint64_t> inserted_total{0};   // upper bound on visibility
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    int64_t next_id = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kBatch; ++i) {
        if (!db.Insert(MakeDoc(next_id++)).ok()) {
          failures.fetch_add(1);
        }
      }
      inserted_total.store(uint64_t(next_id), std::memory_order_release);
      db.RefreshAll();  // refresh + merge, possibly on the pool
      published_total.store(uint64_t(next_id), std::memory_order_release);
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load(std::memory_order_acquire)) {
        const uint64_t low = published_total.load(std::memory_order_acquire);
        auto count = db.ExecuteSql("SELECT COUNT(*) FROM t");
        const uint64_t high = inserted_total.load(std::memory_order_acquire);
        if (!count.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (count->agg_count < low || count->agg_count > high) {
          violations.fetch_add(1);
        }
        // Tenant-scoped path (consecutive-shard fan-out) as well.
        auto rows = db.ExecuteSql(
            "SELECT * FROM t WHERE tenant_id = " + std::to_string(1 + r) +
            " ORDER BY created_time DESC LIMIT 10");
        if (!rows.ok()) failures.fetch_add(1);
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(violations.load(), 0);

  // Everything published; a final query sees exactly the full set.
  auto final_count = db.ExecuteSql("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->agg_count, uint64_t(kRounds * kBatch));
}

TEST(RefreshConcurrencyTest, RefreshVsSerialQueries) {
  RunHammer(/*query_threads=*/0, /*maintenance_threads=*/4);
}

TEST(RefreshConcurrencyTest, RefreshVsParallelQueries) {
  RunHammer(/*query_threads=*/2, /*maintenance_threads=*/4);
}

TEST(RefreshConcurrencyTest, SerialRefreshVsParallelQueries) {
  RunHammer(/*query_threads=*/2, /*maintenance_threads=*/0);
}

// Same hammer against a replicated cluster: RefreshAll additionally
// runs the physical replication round per shard on the pool.
TEST(RefreshConcurrencyTest, ReplicatedRefreshVsQueries) {
  Esdb::Options options = HammerOptions(/*query_threads=*/2,
                                        /*maintenance_threads=*/4);
  options.with_replicas = true;
  Esdb db(options);

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    int64_t next_id = 0;
    for (int round = 0; round < 8; ++round) {
      for (int i = 0; i < 160; ++i) {
        if (!db.Insert(MakeDoc(next_id++)).ok()) failures.fetch_add(1);
      }
      db.RefreshAll();
    }
    done.store(true, std::memory_order_release);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        auto count = db.ExecuteSql("SELECT COUNT(*) FROM t");
        if (!count.ok()) failures.fetch_add(1);
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  auto final_count = db.ExecuteSql("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->agg_count, uint64_t(8 * 160));
  // Replication actually ran under the concurrent load.
  const ReplicationStats stats = db.TotalReplicationStats();
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.segments_copied, 0u);
}

// Parallel RefreshAll must produce byte-identical state to serial:
// same insert stream into two clusters, one refreshed serially and
// one on an 8-thread maintenance pool, must agree on every per-shard
// doc count and on query results.
TEST(RefreshConcurrencyTest, ParallelRefreshMatchesSerial) {
  Esdb serial(HammerOptions(0, 0));
  Esdb parallel(HammerOptions(0, 8));
  for (int round = 0; round < 6; ++round) {
    for (int64_t i = 0; i < 300; ++i) {
      const int64_t id = round * 300 + i;
      ASSERT_TRUE(serial.Insert(MakeDoc(id)).ok());
      ASSERT_TRUE(parallel.Insert(MakeDoc(id)).ok());
    }
    serial.RefreshAll();
    parallel.RefreshAll();
  }
  EXPECT_EQ(serial.ShardDocCounts(), parallel.ShardDocCounts());
  for (uint32_t s = 0; s < serial.num_shards(); ++s) {
    EXPECT_EQ(serial.shard(ShardId(s))->num_segments(),
              parallel.shard(ShardId(s))->num_segments())
        << "shard " << s;
  }
  const std::string sql =
      "SELECT * FROM t WHERE status = 2 ORDER BY created_time DESC LIMIT 40";
  auto a = serial.ExecuteSql(sql);
  auto b = parallel.ExecuteSql(sql);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->total_matched, b->total_matched);
  ASSERT_EQ(a->rows.size(), b->rows.size());
  for (size_t i = 0; i < a->rows.size(); ++i) {
    EXPECT_EQ(a->rows[i], b->rows[i]) << "row " << i;
  }
}

// DistributedEsdb::RefreshAll fans out the refresh+replication rounds
// the same way; node-level doc placement must match the serial run.
TEST(RefreshConcurrencyTest, DistributedParallelRefreshMatchesSerial) {
  DistributedEsdb::Options base;
  base.num_shards = 16;
  base.routing = RoutingKind::kHash;
  base.store.refresh_doc_count = 0;

  DistributedEsdb serial(base);
  DistributedEsdb::Options par = base;
  par.maintenance_threads = 4;
  DistributedEsdb parallel(par);
  for (DistributedEsdb* db : {&serial, &parallel}) {
    ASSERT_TRUE(db->AddNode(NodeId(1)).ok());
    ASSERT_TRUE(db->AddNode(NodeId(2)).ok());
  }
  for (int64_t i = 0; i < 800; ++i) {
    ASSERT_TRUE(serial.Insert(MakeDoc(i)).ok());
    ASSERT_TRUE(parallel.Insert(MakeDoc(i)).ok());
    if (i % 200 == 199) {
      serial.RefreshAll();
      parallel.RefreshAll();
    }
  }
  serial.RefreshAll();
  parallel.RefreshAll();
  EXPECT_EQ(serial.TotalDocs(), parallel.TotalDocs());
  EXPECT_EQ(serial.DocsByNode(), parallel.DocsByNode());
}

}  // namespace
}  // namespace esdb
