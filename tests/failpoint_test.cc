#include <gtest/gtest.h>

#include <algorithm>

#include "common/failpoint.h"

namespace esdb {
namespace {

// The registry is process-wide state; every test starts and ends
// clean so order and sharding cannot matter.
class FailPointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!FailPoints::CompiledIn()) {
      GTEST_SKIP() << "fail points compiled out (ESDB_FAILPOINTS=OFF)";
    }
    FailPoints::DisarmAll();
    FailPoints::ResetCounters();
  }
  void TearDown() override {
    FailPoints::DisarmAll();
    FailPoints::ResetCounters();
  }
};

TEST_F(FailPointTest, DisabledSiteNeverFires) {
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(ESDB_FAIL_POINT(failsite::kSaveManifest));
  }
  // The disabled fast path is deliberately unobservable: no armed
  // evaluation is counted, because none took the registry lock.
  EXPECT_EQ(FailPoints::Evaluations(failsite::kSaveManifest), 0u);
  EXPECT_EQ(FailPoints::Triggers(failsite::kSaveManifest), 0u);
}

TEST_F(FailPointTest, OnceFiresExactlyOnceAndAutoDisarms) {
  FailPoints::Arm(failsite::kSaveManifest, FailPoints::Once());
  EXPECT_TRUE(FailPoints::IsArmed(failsite::kSaveManifest));
  EXPECT_TRUE(ESDB_FAIL_POINT(failsite::kSaveManifest));
  EXPECT_FALSE(FailPoints::IsArmed(failsite::kSaveManifest));
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(ESDB_FAIL_POINT(failsite::kSaveManifest));
  }
  EXPECT_EQ(FailPoints::Triggers(failsite::kSaveManifest), 1u);
}

TEST_F(FailPointTest, ArmingOneSiteDoesNotFireAnother) {
  FailPoints::Arm(failsite::kSaveManifest, FailPoints::Once());
  EXPECT_FALSE(ESDB_FAIL_POINT(failsite::kSaveSegment));
  EXPECT_TRUE(ESDB_FAIL_POINT(failsite::kSaveManifest));
  EXPECT_EQ(FailPoints::Triggers(failsite::kSaveSegment), 0u);
}

TEST_F(FailPointTest, EveryNFiresPeriodically) {
  FailPoints::Arm(failsite::kNetDrop, FailPoints::EveryN(3));
  int fired = 0;
  for (int i = 0; i < 12; ++i) {
    if (ESDB_FAIL_POINT(failsite::kNetDrop)) ++fired;
  }
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(FailPoints::Evaluations(failsite::kNetDrop), 12u);
  EXPECT_EQ(FailPoints::Triggers(failsite::kNetDrop), 4u);
}

TEST_F(FailPointTest, ProbabilityIsDeterministicBySeed) {
  auto run = [](uint64_t seed) {
    FailPoints::Arm(failsite::kNetDrop,
                    FailPoints::WithProbability(0.5, seed));
    std::vector<bool> pattern;
    for (int i = 0; i < 64; ++i) {
      pattern.push_back(ESDB_FAIL_POINT(failsite::kNetDrop));
    }
    FailPoints::Disarm(failsite::kNetDrop);
    return pattern;
  };
  const auto a = run(9), b = run(9), c = run(10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-64 flake odds: different seed, same 64 draws
  const int fired = int(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fired, 10);
  EXPECT_LT(fired, 54);
}

TEST_F(FailPointTest, ProbabilityZeroAndOneAreExact) {
  FailPoints::Arm(failsite::kNetDrop, FailPoints::WithProbability(0.0, 1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(ESDB_FAIL_POINT(failsite::kNetDrop));
  }
  FailPoints::Arm(failsite::kNetDrop, FailPoints::WithProbability(1.0, 1));
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(ESDB_FAIL_POINT(failsite::kNetDrop));
  }
}

TEST_F(FailPointTest, ArgCarriesThePayload) {
  FailPoints::Arm(failsite::kTornTail, FailPoints::Once(/*arg=*/7));
  EXPECT_EQ(FailPoints::Arg(failsite::kTornTail), 7u);
  EXPECT_EQ(FailPoints::Arg(failsite::kSaveManifest), 0u);  // unarmed
}

TEST_F(FailPointTest, ArgSurvivesFailOnceTrigger) {
  // The site reads Arg right after ShouldFail fires — by then a
  // fail-once policy has already auto-disarmed, so the last trigger's
  // arg must still be visible.
  FailPoints::Arm(failsite::kTornTail, FailPoints::Once(/*arg=*/5));
  EXPECT_TRUE(ESDB_FAIL_POINT(failsite::kTornTail));
  EXPECT_FALSE(FailPoints::IsArmed(failsite::kTornTail));
  EXPECT_EQ(FailPoints::Arg(failsite::kTornTail), 5u);
}

TEST_F(FailPointTest, RearmReplacesPolicy) {
  FailPoints::Arm(failsite::kNetDrop, FailPoints::EveryN(1000));
  FailPoints::Arm(failsite::kNetDrop, FailPoints::EveryN(1));
  EXPECT_TRUE(ESDB_FAIL_POINT(failsite::kNetDrop));
}

TEST_F(FailPointTest, ScopedFailPointDisarmsOnExit) {
  {
    ScopedFailPoint fp(failsite::kSaveSegment, FailPoints::EveryN(1));
    EXPECT_TRUE(ESDB_FAIL_POINT(failsite::kSaveSegment));
  }
  EXPECT_FALSE(FailPoints::IsArmed(failsite::kSaveSegment));
  EXPECT_FALSE(ESDB_FAIL_POINT(failsite::kSaveSegment));
}

TEST_F(FailPointTest, DisarmAllClearsEverything) {
  FailPoints::Arm(failsite::kSaveSegment, FailPoints::EveryN(1));
  FailPoints::Arm(failsite::kNetDrop, FailPoints::EveryN(1));
  FailPoints::DisarmAll();
  EXPECT_FALSE(FailPoints::IsArmed(failsite::kSaveSegment));
  EXPECT_FALSE(FailPoints::IsArmed(failsite::kNetDrop));
  EXPECT_FALSE(ESDB_FAIL_POINT(failsite::kSaveSegment));
}

TEST_F(FailPointTest, CountersSurviveDisarmAndReset) {
  FailPoints::Arm(failsite::kNetDelay, FailPoints::EveryN(1));
  EXPECT_TRUE(ESDB_FAIL_POINT(failsite::kNetDelay));
  FailPoints::Disarm(failsite::kNetDelay);
  EXPECT_EQ(FailPoints::Triggers(failsite::kNetDelay), 1u);
  FailPoints::ResetCounters();
  EXPECT_EQ(FailPoints::Triggers(failsite::kNetDelay), 0u);
  EXPECT_EQ(FailPoints::Evaluations(failsite::kNetDelay), 0u);
}

TEST_F(FailPointTest, AllSitesListsEveryNamedConstant) {
  const std::vector<std::string> sites = FailPoints::AllSites();
  const char* expected[] = {
      failsite::kTranslogAppend,         failsite::kTranslogTruncate,
      failsite::kSaveSegment,            failsite::kSaveTranslog,
      failsite::kSaveManifest,           failsite::kTornTail,
      failsite::kLoadSegment,            failsite::kReplicationCopySegment,
      failsite::kReplicationCatchup,     failsite::kNetDrop,
      failsite::kNetDelay,               failsite::kColdCompress,
      failsite::kColdWrite,              failsite::kColdLoad,
      failsite::kMigrateStart,           failsite::kMigrateCopySegment,
      failsite::kMigrateDeltaReplay,     failsite::kMigrateMirrorWrite,
      failsite::kMigrateCutover,
  };
  EXPECT_EQ(sites.size(), std::size(expected));
  for (const char* site : expected) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site;
  }
}

TEST_F(FailPointTest, CrashModeAbortsTheProcess) {
  FailPoints::Arm(failsite::kSaveManifest, FailPoints::CrashHere());
  EXPECT_DEATH_IF_SUPPORTED(
      (void)ESDB_FAIL_POINT(failsite::kSaveManifest), "fail point");
  FailPoints::Disarm(failsite::kSaveManifest);
}

}  // namespace
}  // namespace esdb
