#include <gtest/gtest.h>

#include "query/datetime.h"
#include "query/parser.h"

namespace esdb {
namespace {

Query MustParse(std::string_view sql) {
  auto q = ParseSql(sql);
  EXPECT_TRUE(q.ok()) << sql << " -> " << q.status().ToString();
  return std::move(q).value();
}

TEST(DateTimeTest, RoundTrip) {
  Micros t = 0;
  ASSERT_TRUE(ParseDateTime("2021-09-16 00:00:00", &t));
  EXPECT_EQ(FormatDateTime(t), "2021-09-16 00:00:00");
  ASSERT_TRUE(ParseDateTime("1999-12-31 23:59:59", &t));
  EXPECT_EQ(FormatDateTime(t), "1999-12-31 23:59:59");
}

TEST(DateTimeTest, KnownEpochValues) {
  Micros t = 0;
  ASSERT_TRUE(ParseDateTime("1970-01-01 00:00:00", &t));
  EXPECT_EQ(t, 0);
  ASSERT_TRUE(ParseDateTime("1970-01-02 00:00:00", &t));
  EXPECT_EQ(t, 86400 * kMicrosPerSecond);
}

TEST(DateTimeTest, RejectsBadFormats) {
  Micros t = 0;
  EXPECT_FALSE(ParseDateTime("2021-9-16 00:00:00", &t));
  EXPECT_FALSE(ParseDateTime("2021-09-16", &t));
  EXPECT_FALSE(ParseDateTime("2021-13-16 00:00:00", &t));
  EXPECT_FALSE(ParseDateTime("2021-09-16 25:00:00", &t));
  EXPECT_FALSE(ParseDateTime("2021-09-16T00:00:00", &t));
  EXPECT_FALSE(ParseDateTime("not a date at all!!", &t));
}

TEST(ParserTest, PaperExampleQuery) {
  // Figure 6 of the paper (quotes adapted to ASCII).
  const Query q = MustParse(
      "SELECT * FROM transaction_logs "
      "WHERE tenant_id = 10086 "
      "AND created_time >= '2021-09-16 00:00:00' "
      "AND created_time <= '2021-09-17 00:00:00' "
      "AND status = 1 OR group = 666");
  EXPECT_EQ(q.table, "transaction_logs");
  ASSERT_NE(q.where, nullptr);
  // AND binds tighter than OR: top level is an OR of 2.
  EXPECT_EQ(q.where->kind, Expr::Kind::kOr);
  ASSERT_EQ(q.where->children.size(), 2u);
  EXPECT_EQ(q.where->children[0]->kind, Expr::Kind::kAnd);
}

TEST(ParserTest, DateLiteralsBecomeTimestamps) {
  const Query q = MustParse(
      "SELECT * FROM t WHERE created_time >= '2021-09-16 00:00:00'");
  const Predicate& p = q.where->pred;
  ASSERT_TRUE(p.args[0].is_int());
  Micros expected = 0;
  ASSERT_TRUE(ParseDateTime("2021-09-16 00:00:00", &expected));
  EXPECT_EQ(p.args[0].as_int(), expected);
}

TEST(ParserTest, AllComparisonOperators) {
  const struct {
    const char* sql_op;
    PredOp expected;
  } kCases[] = {{"=", PredOp::kEq},  {"!=", PredOp::kNe}, {"<>", PredOp::kNe},
                {"<", PredOp::kLt},  {"<=", PredOp::kLe}, {">", PredOp::kGt},
                {">=", PredOp::kGe}};
  for (const auto& c : kCases) {
    const Query q = MustParse(std::string("SELECT * FROM t WHERE a ") +
                              c.sql_op + " 5");
    EXPECT_EQ(q.where->pred.op, c.expected) << c.sql_op;
  }
}

TEST(ParserTest, BetweenInLikeMatch) {
  Query q = MustParse("SELECT * FROM t WHERE a BETWEEN 1 AND 10");
  EXPECT_EQ(q.where->pred.op, PredOp::kBetween);
  ASSERT_EQ(q.where->pred.args.size(), 2u);

  q = MustParse("SELECT * FROM t WHERE a IN (1, 2, 3)");
  EXPECT_EQ(q.where->pred.op, PredOp::kIn);
  EXPECT_EQ(q.where->pred.args.size(), 3u);

  q = MustParse("SELECT * FROM t WHERE name LIKE 'book%'");
  EXPECT_EQ(q.where->pred.op, PredOp::kLike);

  q = MustParse("SELECT * FROM t WHERE MATCH(title, 'classic novel')");
  EXPECT_EQ(q.where->pred.op, PredOp::kMatch);
  EXPECT_EQ(q.where->pred.column, "title");
}

TEST(ParserTest, IsNullAndNegations) {
  Query q = MustParse("SELECT * FROM t WHERE a IS NULL");
  EXPECT_EQ(q.where->pred.op, PredOp::kIsNull);
  q = MustParse("SELECT * FROM t WHERE a IS NOT NULL");
  EXPECT_EQ(q.where->pred.op, PredOp::kIsNotNull);
  q = MustParse("SELECT * FROM t WHERE a NOT IN (1)");
  EXPECT_EQ(q.where->kind, Expr::Kind::kNot);
  q = MustParse("SELECT * FROM t WHERE NOT (a = 1 AND b = 2)");
  EXPECT_EQ(q.where->kind, Expr::Kind::kNot);
}

TEST(ParserTest, BooleanAndNullLiterals) {
  const Query q =
      MustParse("SELECT * FROM t WHERE a = TRUE AND b = false");
  const Expr& e = *q.where;
  EXPECT_TRUE(e.children[0]->pred.args[0].is_bool());
  EXPECT_FALSE(e.children[1]->pred.args[0].as_bool());
}

TEST(ParserTest, OrderByAndLimit) {
  const Query q = MustParse(
      "SELECT * FROM t WHERE a = 1 "
      "ORDER BY created_time DESC, record_id ASC LIMIT 100");
  ASSERT_EQ(q.order_by.size(), 2u);
  EXPECT_TRUE(q.order_by[0].descending);
  EXPECT_FALSE(q.order_by[1].descending);
  EXPECT_EQ(q.limit, 100);
}

TEST(ParserTest, SelectColumnsAndAggregates) {
  Query q = MustParse("SELECT tenant_id, status FROM t");
  EXPECT_EQ(q.select_columns,
            (std::vector<std::string>{"tenant_id", "status"}));
  EXPECT_EQ(q.where, nullptr);

  q = MustParse("SELECT COUNT(*) FROM t WHERE a = 1");
  EXPECT_EQ(q.agg, AggFunc::kCount);
  q = MustParse("SELECT SUM(amount) FROM t");
  EXPECT_EQ(q.agg, AggFunc::kSum);
  EXPECT_EQ(q.agg_column, "amount");
  q = MustParse("SELECT AVG(amount) FROM t");
  EXPECT_EQ(q.agg, AggFunc::kAvg);
  q = MustParse("SELECT MIN(amount) FROM t");
  EXPECT_EQ(q.agg, AggFunc::kMin);
  q = MustParse("SELECT MAX(amount) FROM t");
  EXPECT_EQ(q.agg, AggFunc::kMax);
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  const Query q = MustParse(
      "select * from t where a = 1 and b = 2 order by a limit 5");
  EXPECT_EQ(q.limit, 5);
  EXPECT_EQ(q.where->kind, Expr::Kind::kAnd);
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  const Query q =
      MustParse("SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)");
  EXPECT_EQ(q.where->kind, Expr::Kind::kAnd);
  EXPECT_EQ(q.where->children[1]->kind, Expr::Kind::kOr);
}

TEST(ParserTest, DottedColumnNames) {
  const Query q =
      MustParse("SELECT * FROM t WHERE attributes.activity = 'promo'");
  EXPECT_EQ(q.where->pred.column, "attributes.activity");
}

TEST(ParserTest, NegativeNumbersAndFloats) {
  const Query q = MustParse("SELECT * FROM t WHERE a = -5 AND b = 2.5");
  EXPECT_EQ(q.where->children[0]->pred.args[0].as_int(), -5);
  EXPECT_DOUBLE_EQ(q.where->children[1]->pred.args[0].as_double(), 2.5);
}

TEST(ParserTest, RejectsMalformedSql) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("SELECT").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE a =").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE a = 'unterminated").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE a BETWEEN 1").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE a IN ()").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t LIMIT").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t trailing garbage").ok());
  EXPECT_FALSE(ParseSql("SELECT COUNT(x) FROM t").ok());
}

TEST(ParserTest, QueryToStringRoundTripsThroughParser) {
  const Query q1 = MustParse(
      "SELECT * FROM t WHERE tenant_id = 1 AND (status = 2 OR group = 3) "
      "ORDER BY created_time DESC LIMIT 10");
  const Query q2 = MustParse(q1.ToString());
  EXPECT_EQ(q1.ToString(), q2.ToString());
}

}  // namespace
}  // namespace esdb
