// Unit tests for tools/lint: each invariant is exercised twice — on
// inline snippets (precise line/message assertions) and on the
// on-disk fixture trees under tools/lint/testdata (the same trees the
// ctest WILL_FAIL entries run the real binary against). A final
// self-check asserts src/ is lint-clean, so the invariant inventory
// in DESIGN.md §11 is enforced by the tier-1 suite.

#include "linter.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"

namespace esdb_lint {
namespace {

namespace fs = std::filesystem;

std::vector<SourceFile> LoadTree(const fs::path& root) {
  std::vector<SourceFile> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    files.push_back(
        {fs::relative(entry.path(), root).generic_string(), buf.str()});
  }
  return files;
}

bool HasCheck(const std::vector<Finding>& findings, const std::string& check) {
  for (const Finding& f : findings) {
    if (f.check == check) return true;
  }
  return false;
}

// --- StripComments ----------------------------------------------------

TEST(StripComments, RemovesCommentsKeepsLineStructure) {
  const std::string in =
      "int a; // trailing\n"
      "/* block\n"
      "   spanning */ int b;\n";
  const std::string out = StripComments(in, /*strip_strings=*/false);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
  EXPECT_EQ(out.find("trailing"), std::string::npos);
  EXPECT_EQ(out.find("spanning"), std::string::npos);
}

TEST(StripComments, CommentMarkersInsideStringsAreNotComments) {
  const std::string in = "const char* s = \"// not a comment\"; int c;\n";
  const std::string kept = StripComments(in, /*strip_strings=*/false);
  EXPECT_NE(kept.find("// not a comment"), std::string::npos);
  EXPECT_NE(kept.find("int c;"), std::string::npos);
  const std::string blanked = StripComments(in, /*strip_strings=*/true);
  EXPECT_EQ(blanked.find("not a comment"), std::string::npos);
  EXPECT_NE(blanked.find("int c;"), std::string::npos);
}

TEST(StripComments, StringsInsideCommentsStayStripped) {
  const std::string in = "// \"quoted\" in comment\nint d;\n";
  const std::string out = StripComments(in, /*strip_strings=*/false);
  EXPECT_EQ(out.find("quoted"), std::string::npos);
  EXPECT_NE(out.find("int d;"), std::string::npos);
}

// --- layer-dag --------------------------------------------------------

TEST(LayerDag, UpwardIncludeIsAnError) {
  const std::vector<SourceFile> files = {
      {"storage/store.h", "#include \"query/executor.h\"\n"},
  };
  const std::vector<Finding> findings = CheckLayerDag(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "layer-dag");
  EXPECT_EQ(findings[0].file, "storage/store.h");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_NE(findings[0].message.find("upward include"), std::string::npos);
}

TEST(LayerDag, DownwardSameLayerAndSystemIncludesAreFine) {
  const std::vector<SourceFile> files = {
      {"query/executor.h",
       "#include <vector>\n"
       "#include \"common/status.h\"\n"
       "#include \"storage/segment.h\"\n"
       "#include \"routing/router.h\"\n"},
  };
  EXPECT_TRUE(CheckLayerDag(files).empty());
}

TEST(LayerDag, CommentedIncludeDoesNotCount) {
  const std::vector<SourceFile> files = {
      {"storage/store.h", "// #include \"query/executor.h\"\n"},
  };
  EXPECT_TRUE(CheckLayerDag(files).empty());
}

TEST(LayerDag, UnknownDirectoryIsItselfAFinding) {
  const std::vector<SourceFile> files = {{"mystery/x.h", "int a;\n"}};
  const std::vector<Finding> findings = CheckLayerDag(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("no layer assignment"),
            std::string::npos);
}

// --- raw-primitive ----------------------------------------------------

TEST(RawPrimitive, BansStdMutexOutsideWrapper) {
  const std::vector<SourceFile> files = {
      {"storage/cache.h",
       "#include <mutex>\n"
       "std::mutex mu;\n"},
  };
  const std::vector<Finding> findings = CheckRawPrimitives(files);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_EQ(findings[1].line, 2);
  EXPECT_NE(findings[1].message.find("esdb::Mutex"), std::string::npos);
}

TEST(RawPrimitive, WrapperFilesAreAllowed) {
  const std::vector<SourceFile> files = {
      {"common/mutex.h", "#include <mutex>\nstd::mutex mu;\n"},
      {"common/thread_pool.h", "#include <thread>\nstd::thread t;\n"},
  };
  EXPECT_TRUE(CheckRawPrimitives(files).empty());
}

TEST(RawPrimitive, ThreadPoolMayNotUseMutexAllowance) {
  const std::vector<SourceFile> files = {
      {"common/thread_pool.h", "std::mutex mu;\n"},
  };
  EXPECT_EQ(CheckRawPrimitives(files).size(), 1u);
}

TEST(RawPrimitive, TokenBoundaryNoFalsePositiveOnMention) {
  // The banned identifier inside a comment or string is not a use.
  const std::vector<SourceFile> files = {
      {"storage/a.h", "// std::mutex is banned here\n"},
      {"storage/b.h", "const char* kMsg = \"std::thread\";\n"},
  };
  EXPECT_TRUE(CheckRawPrimitives(files).empty());
}

// --- lock-order -------------------------------------------------------

TEST(LockOrder, AcyclicAnnotationsPass) {
  const std::vector<SourceFile> files = {
      {"storage/s.h",
       "class S {\n"
       "  Mutex write_mu_;\n"
       "  Mutex buffer_mu_ ACQUIRED_AFTER(write_mu_);\n"
       "  Mutex epoch_mu_ ACQUIRED_AFTER(write_mu_);\n"
       "};\n"},
  };
  EXPECT_TRUE(CheckLockOrder(files).empty());
}

TEST(LockOrder, TwoLockCycleIsReported) {
  const std::vector<SourceFile> files = {
      {"storage/s.h",
       "class S {\n"
       "  Mutex a_mu_ ACQUIRED_AFTER(b_mu_);\n"
       "  Mutex b_mu_ ACQUIRED_AFTER(a_mu_);\n"
       "};\n"},
  };
  const std::vector<Finding> findings = CheckLockOrder(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "lock-order");
  EXPECT_NE(findings[0].message.find("cycle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("S::a_mu_"), std::string::npos);
}

TEST(LockOrder, AcquiredBeforeEdgesJoinTheSameGraph) {
  // a BEFORE b  and  a AFTER b  together form a cycle.
  const std::vector<SourceFile> files = {
      {"storage/s.h",
       "class S {\n"
       "  Mutex a_mu_ ACQUIRED_BEFORE(b_mu_) ACQUIRED_AFTER(b_mu_);\n"
       "};\n"},
  };
  EXPECT_EQ(CheckLockOrder(files).size(), 1u);
}

TEST(LockOrder, SameMemberNamesInDifferentClassesAreDistinctLocks) {
  const std::vector<SourceFile> files = {
      {"storage/s.h",
       "class A {\n"
       "  Mutex a_mu_ ACQUIRED_AFTER(b_mu_);\n"
       "};\n"
       "class B {\n"
       "  Mutex b_mu_ ACQUIRED_AFTER(a_mu_);\n"
       "};\n"},
  };
  // A::b_mu_ -> A::a_mu_ and B::a_mu_ -> B::b_mu_: no cycle.
  EXPECT_TRUE(CheckLockOrder(files).empty());
}

// --- failpoint-registry ----------------------------------------------

const char kRegistryHeader[] =
    "namespace failsite {\n"
    "inline constexpr const char* kAlpha = \"demo/alpha\";\n"
    "inline constexpr const char* kBeta = \"demo/beta\";\n"
    "}  // namespace failsite\n";

TEST(FailPointRegistry, BalancedRegistryPasses) {
  const std::vector<SourceFile> files = {
      {"common/failpoint.h", kRegistryHeader},
      {"common/failpoint.cc",
       "const char** AllSites() {\n"
       "  static const char* s[] = {failsite::kAlpha, failsite::kBeta};\n"
       "  return s;\n"
       "}\n"},
      {"storage/store.cc",
       "void F() {\n"
       "  ESDB_FAIL_POINT(failsite::kAlpha);\n"
       "  ESDB_FAIL_POINT(failsite::kBeta);\n"
       "}\n"},
  };
  EXPECT_TRUE(CheckFailPointRegistry(files).empty());
}

TEST(FailPointRegistry, UnregisteredUseIsReported) {
  const std::vector<SourceFile> files = {
      {"common/failpoint.h", kRegistryHeader},
      {"common/failpoint.cc",
       "const char** AllSites() {\n"
       "  static const char* s[] = {failsite::kAlpha};\n"
       "  return s;\n"
       "}\n"},
      {"storage/store.cc",
       "void F() {\n"
       "  ESDB_FAIL_POINT(failsite::kAlpha);\n"
       "  ESDB_FAIL_POINT(failsite::kBeta);\n"
       "}\n"},
  };
  const std::vector<Finding> findings = CheckFailPointRegistry(files);
  // Two findings: the use of kBeta is unregistered, and the declared
  // constant kBeta is missing from AllSites().
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_TRUE(HasCheck(findings, "failpoint-registry"));
}

TEST(FailPointRegistry, UndeclaredSiteIsReported) {
  const std::vector<SourceFile> files = {
      {"common/failpoint.h", kRegistryHeader},
      {"common/failpoint.cc",
       "const char** AllSites() {\n"
       "  static const char* s[] = {failsite::kAlpha, failsite::kBeta};\n"
       "  return s;\n"
       "}\n"},
      {"storage/store.cc",
       "void F() {\n"
       "  ESDB_FAIL_POINT(failsite::kAlpha);\n"
       "  ESDB_FAIL_POINT(failsite::kBeta);\n"
       "  ESDB_FAIL_POINT(failsite::kGamma);\n"
       "}\n"},
  };
  const std::vector<Finding> findings = CheckFailPointRegistry(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "storage/store.cc");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("not declared"), std::string::npos);
}

TEST(FailPointRegistry, AdHocSiteNameIsReported) {
  const std::vector<SourceFile> files = {
      {"common/failpoint.h", kRegistryHeader},
      {"common/failpoint.cc",
       "const char** AllSites() {\n"
       "  static const char* s[] = {failsite::kAlpha, failsite::kBeta};\n"
       "  return s;\n"
       "}\n"},
      {"storage/store.cc",
       "void F() {\n"
       "  ESDB_FAIL_POINT(failsite::kAlpha);\n"
       "  ESDB_FAIL_POINT(failsite::kBeta);\n"
       "  ESDB_FAIL_POINT(\"storage/adhoc\");\n"
       "}\n"},
  };
  const std::vector<Finding> findings = CheckFailPointRegistry(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("not a failsite:: constant"),
            std::string::npos);
}

TEST(FailPointRegistry, DeadRegistryEntryIsReported) {
  const std::vector<SourceFile> files = {
      {"common/failpoint.h", kRegistryHeader},
      {"common/failpoint.cc",
       "const char** AllSites() {\n"
       "  static const char* s[] = {failsite::kAlpha, failsite::kBeta};\n"
       "  return s;\n"
       "}\n"},
      {"storage/store.cc",
       "void F() { ESDB_FAIL_POINT(failsite::kAlpha); }\n"},
  };
  const std::vector<Finding> findings = CheckFailPointRegistry(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("no ESDB_FAIL_POINT site"),
            std::string::npos);
}

// --- guarded-member ---------------------------------------------------

const char kGuardedClassPrefix[] =
    "class Store {\n"
    " private:\n"
    "  Mutex mu_;\n";

TEST(GuardedMember, UnannotatedMemberOfMutexClassIsReported) {
  const std::vector<SourceFile> files = {
      {"storage/s.h",
       std::string(kGuardedClassPrefix) + "  int rows_ = 0;\n};\n"},
  };
  const std::vector<Finding> findings = CheckGuardedMembers(files);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "guarded-member");
  EXPECT_EQ(findings[0].line, 4);
  EXPECT_NE(findings[0].message.find("'rows_'"), std::string::npos);
}

TEST(GuardedMember, AnnotatedConstAtomicAndWaivedMembersPass) {
  const std::vector<SourceFile> files = {
      {"storage/s.h",
       std::string(kGuardedClassPrefix) +
           "  int rows_ GUARDED_BY(mu_) = 0;\n"
           "  const int capacity_ = 4;\n"
           "  std::atomic<int> hits_{0};\n"
           "  CondVar cv_;\n"
           "  // lint:unguarded(scratch, single-threaded)\n"
           "  int scratch_ = 0;\n"
           "  int inline_waived_ = 0;  // lint:unguarded(reason)\n"
           "};\n"},
  };
  EXPECT_TRUE(CheckGuardedMembers(files).empty());
}

TEST(GuardedMember, ClassWithoutMutexIsNotAudited) {
  const std::vector<SourceFile> files = {
      {"storage/s.h", "class Plain {\n  int rows_ = 0;\n};\n"},
  };
  EXPECT_TRUE(CheckGuardedMembers(files).empty());
}

TEST(GuardedMember, MutexPointerIsNotACapability) {
  // A pointer to someone else's mutex does not make this class
  // mutex-owning.
  const std::vector<SourceFile> files = {
      {"storage/s.h", "class Ref {\n  Mutex* mu_;\n  int rows_ = 0;\n};\n"},
  };
  EXPECT_TRUE(CheckGuardedMembers(files).empty());
}

TEST(GuardedMember, NestedClassMembersAttributeToInnerClass) {
  // The outer class owns the mutex; the inner struct's members are
  // not the outer class's members.
  const std::vector<SourceFile> files = {
      {"storage/s.h",
       "class Outer {\n"
       "  Mutex mu_;\n"
       "  struct Inner {\n"
       "    int x_ = 0;\n"
       "  };\n"
       "  Inner inner_ GUARDED_BY(mu_);\n"
       "};\n"},
  };
  EXPECT_TRUE(CheckGuardedMembers(files).empty());
}

// --- plan-node-sync ---------------------------------------------------

namespace plan_sync {

const char kPlanH[] =
    "struct PlanNode {\n"
    "  enum class Kind {\n"
    "    kEmpty,\n"
    "    kFullScan,\n"
    "  };\n"
    "  Kind kind = Kind::kEmpty;\n"
    "};\n";

const char kExecutorFull[] =
    "unsigned EvalPlan(const PlanNode& plan) {\n"
    "  switch (plan.kind) {\n"
    "    case PlanNode::Kind::kEmpty: return 0;\n"
    "    case PlanNode::Kind::kFullScan: return 1;\n"
    "  }\n"
    "  return 0;\n"
    "}\n";

const char kFingerprintFull[] =
    "void FingerprintFields(const PlanNode& plan, std::string* out) {\n"
    "  if (plan.kind == PlanNode::Kind::kEmpty) out->push_back('0');\n"
    "  if (plan.kind == PlanNode::Kind::kFullScan) out->push_back('1');\n"
    "}\n";

const char kToStringFull[] =
    "std::string PlanNode::ToString(int indent) const {\n"
    "  switch (kind) {\n"
    "    case Kind::kEmpty: return \"Empty\";\n"
    "    case Kind::kFullScan: return \"FullScan\";\n"
    "  }\n"
    "  return \"\";\n"
    "}\n";

}  // namespace plan_sync

TEST(PlanNodeSync, CompleteTreeIsClean) {
  const std::vector<SourceFile> files = {
      {"query/plan.h", plan_sync::kPlanH},
      {"query/executor.cc", plan_sync::kExecutorFull},
      {"query/filter_cache.cc", plan_sync::kFingerprintFull},
      {"query/plan.cc", plan_sync::kToStringFull},
  };
  const std::vector<Finding> findings = CheckPlanNodeSync(files);
  EXPECT_TRUE(findings.empty()) << ToText(findings);
}

TEST(PlanNodeSync, MissingExecutorCaseIsReported) {
  const std::vector<SourceFile> files = {
      {"query/plan.h", plan_sync::kPlanH},
      {"query/executor.cc",
       "unsigned EvalPlan(const PlanNode& plan) {\n"
       "  if (plan.kind == PlanNode::Kind::kEmpty) return 0;\n"
       "  return 1;\n"  // kFullScan silently folded into the default
       "}\n"},
      {"query/filter_cache.cc", plan_sync::kFingerprintFull},
      {"query/plan.cc", plan_sync::kToStringFull},
  };
  const std::vector<Finding> findings = CheckPlanNodeSync(files);
  ASSERT_EQ(findings.size(), 1u) << ToText(findings);
  EXPECT_EQ(findings[0].check, "plan-node-sync");
  EXPECT_EQ(findings[0].file, "query/executor.cc");
  EXPECT_NE(findings[0].message.find("kFullScan"), std::string::npos);
  EXPECT_NE(findings[0].message.find("EvalPlan"), std::string::npos);
}

TEST(PlanNodeSync, CallSitesDoNotSatisfyTheCheck) {
  // A mention of Kind::kFullScan outside EvalPlan's body (here, in a
  // helper) must not count as the dispatch handling the kind.
  const std::vector<SourceFile> files = {
      {"query/plan.h", plan_sync::kPlanH},
      {"query/executor.cc",
       "bool IsScan(const PlanNode& p) {\n"
       "  return p.kind == PlanNode::Kind::kFullScan;\n"
       "}\n"
       "unsigned EvalPlan(const PlanNode& plan) {\n"
       "  if (plan.kind == PlanNode::Kind::kEmpty) return 0;\n"
       "  return 1;\n"
       "}\n"},
      {"query/filter_cache.cc", plan_sync::kFingerprintFull},
      {"query/plan.cc", plan_sync::kToStringFull},
  };
  const std::vector<Finding> findings = CheckPlanNodeSync(files);
  ASSERT_EQ(findings.size(), 1u) << ToText(findings);
  EXPECT_NE(findings[0].message.find("kFullScan"), std::string::npos);
}

TEST(PlanNodeSync, TreesWithoutThePlanHeaderAreSkipped) {
  const std::vector<SourceFile> files = {
      {"storage/segment.cc", "int x;\n"},
  };
  EXPECT_TRUE(CheckPlanNodeSync(files).empty());
}

// --- output formats ---------------------------------------------------

TEST(Output, JsonIsWellFormedAndEscaped) {
  const std::vector<Finding> findings = {
      {"layer-dag", "storage/a.h", 3, "message with \"quotes\""},
  };
  const std::string json = ToJson(findings);
  EXPECT_NE(json.find("\"check\": \"layer-dag\""), std::string::npos);
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos);
  EXPECT_NE(json.find("\\\"quotes\\\""), std::string::npos);
}

TEST(Output, EmptyFindingsIsEmptyArray) {
  EXPECT_EQ(ToJson({}), "[]\n");
  EXPECT_EQ(ToText({}), "");
}

TEST(Output, TextFormatIsFileLineCheckMessage) {
  const std::vector<Finding> findings = {
      {"lock-order", "storage/s.h", 7, "cycle"},
  };
  EXPECT_EQ(ToText(findings), "storage/s.h:7: [lock-order] cycle\n");
}

// --- fixture trees (same inputs as the ctest WILL_FAIL entries) -------

TEST(Fixtures, CleanTreeHasNoFindings) {
  const std::vector<Finding> findings =
      RunLint(LoadTree(fs::path(ESDB_LINT_TESTDATA) / "clean"));
  EXPECT_TRUE(findings.empty()) << ToText(findings);
}

TEST(Fixtures, BrokenTreesProduceTheExpectedDiagnostic) {
  const struct {
    const char* tree;
    const char* check;
  } kCases[] = {
      {"broken_dag", "layer-dag"},
      {"broken_lock_cycle", "lock-order"},
      {"broken_failpoint", "failpoint-registry"},
      {"broken_mutex", "raw-primitive"},
      {"broken_unguarded", "guarded-member"},
      {"broken_plan_sync", "plan-node-sync"},
  };
  for (const auto& c : kCases) {
    const std::vector<Finding> findings =
        RunLint(LoadTree(fs::path(ESDB_LINT_TESTDATA) / c.tree));
    EXPECT_TRUE(HasCheck(findings, c.check))
        << c.tree << " did not produce a " << c.check << " finding:\n"
        << ToText(findings);
  }
}

// --- the tree lints itself -------------------------------------------

TEST(SelfCheck, SrcIsLintClean) {
  const std::vector<Finding> findings =
      RunLint(LoadTree(fs::path(ESDB_LINT_SRC_ROOT)));
  EXPECT_TRUE(findings.empty()) << ToText(findings);
}

}  // namespace
}  // namespace esdb_lint
