#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "storage/block_cache.h"

namespace esdb {
namespace {

// Loader producing a string block of `size` bytes filled with `fill`,
// counting invocations.
BlockCache::Loader StringLoader(size_t size, char fill,
                                std::atomic<int>* calls = nullptr) {
  return [=]() -> Result<BlockCache::Block> {
    if (calls != nullptr) calls->fetch_add(1);
    auto data = std::make_shared<std::string>(size, fill);
    return BlockCache::Block{std::move(data), size};
  };
}

TEST(BlockCacheTest, HitAvoidsLoader) {
  BlockCache cache;
  const uint64_t owner = BlockCache::NewOwnerId();
  std::atomic<int> calls{0};
  for (int i = 0; i < 3; ++i) {
    auto b = cache.Pin(owner, 0, StringLoader(100, 'a', &calls));
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(b->charge, 100u);
  }
  EXPECT_EQ(calls.load(), 1);
  const BlockCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.charged_bytes, 100u);
}

TEST(BlockCacheTest, LruEvictionUnderPressure) {
  BlockCache::Options options;
  options.capacity_bytes = 300;
  BlockCache cache(options);
  const uint64_t owner = BlockCache::NewOwnerId();
  // Three 100-byte blocks fill the cache exactly.
  for (uint32_t b = 0; b < 3; ++b) {
    ASSERT_TRUE(cache.Pin(owner, b, StringLoader(100, char('a' + b))).ok());
  }
  EXPECT_EQ(cache.stats().entries, 3u);
  // Touch block 0 so block 1 is the LRU victim, then overflow.
  ASSERT_TRUE(cache.Pin(owner, 0, StringLoader(100, 'a')).ok());
  ASSERT_TRUE(cache.Pin(owner, 3, StringLoader(100, 'd')).ok());
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().charged_bytes, 300u);
  // Block 1 was evicted: pinning it again must reload.
  std::atomic<int> calls{0};
  ASSERT_TRUE(cache.Pin(owner, 1, StringLoader(100, 'b', &calls)).ok());
  EXPECT_EQ(calls.load(), 1);
  // Block 0 was kept (recently touched): no reload.
  calls = 0;
  ASSERT_TRUE(cache.Pin(owner, 0, StringLoader(100, 'a', &calls)).ok());
  EXPECT_EQ(calls.load(), 0);
}

TEST(BlockCacheTest, OversizedBlockStillServed) {
  BlockCache::Options options;
  options.capacity_bytes = 10;  // smaller than any block
  BlockCache cache(options);
  const uint64_t owner = BlockCache::NewOwnerId();
  // A block larger than the whole capacity is still returned to the
  // caller (the cache keeps at least the newest entry).
  auto b = cache.Pin(owner, 0, StringLoader(1000, 'x'));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(std::static_pointer_cast<const std::string>(b->data)->size(),
            1000u);
  EXPECT_GE(cache.stats().entries, 1u);
}

TEST(BlockCacheTest, PinSurvivesEviction) {
  BlockCache::Options options;
  options.capacity_bytes = 100;
  BlockCache cache(options);
  const uint64_t owner = BlockCache::NewOwnerId();
  auto pinned = cache.PinAs<std::string>(owner, 0, StringLoader(100, 'p'));
  ASSERT_TRUE(pinned.ok());
  // Evict block 0 by loading another full-capacity block.
  ASSERT_TRUE(cache.Pin(owner, 1, StringLoader(100, 'q')).ok());
  // Our pin still holds the original bytes.
  EXPECT_EQ(**pinned, std::string(100, 'p'));
}

TEST(BlockCacheTest, EraseOwnerDropsOnlyThatOwner) {
  BlockCache cache;
  const uint64_t a = BlockCache::NewOwnerId();
  const uint64_t b = BlockCache::NewOwnerId();
  ASSERT_NE(a, b);
  ASSERT_TRUE(cache.Pin(a, 0, StringLoader(10, 'a')).ok());
  ASSERT_TRUE(cache.Pin(a, 1, StringLoader(10, 'a')).ok());
  ASSERT_TRUE(cache.Pin(b, 0, StringLoader(10, 'b')).ok());
  cache.EraseOwner(a);
  EXPECT_EQ(cache.stats().entries, 1u);
  std::atomic<int> calls{0};
  ASSERT_TRUE(cache.Pin(b, 0, StringLoader(10, 'b', &calls)).ok());
  EXPECT_EQ(calls.load(), 0);  // b's entry untouched
  ASSERT_TRUE(cache.Pin(a, 0, StringLoader(10, 'a', &calls)).ok());
  EXPECT_EQ(calls.load(), 1);  // a's entry really gone
}

TEST(BlockCacheTest, LoaderErrorPropagatesAndCachesNothing) {
  BlockCache cache;
  const uint64_t owner = BlockCache::NewOwnerId();
  auto failing = []() -> Result<BlockCache::Block> {
    return Status::Corruption("bad block");
  };
  EXPECT_FALSE(cache.Pin(owner, 0, failing).ok());
  EXPECT_EQ(cache.stats().entries, 0u);
  // A later successful load is not poisoned.
  EXPECT_TRUE(cache.Pin(owner, 0, StringLoader(10, 'z')).ok());
}

// Concurrency hammer: many threads pinning overlapping (owner, block)
// keys through a tiny cache while owners are erased underneath them.
// Run under TSan/ASan this is the data-race / use-after-free gate for
// the cold read path.
TEST(BlockCacheTest, ConcurrentHammer) {
  BlockCache::Options options;
  options.capacity_bytes = 2000;  // forces constant eviction
  BlockCache cache(options);
  constexpr int kOwners = 4;
  uint64_t owners[kOwners];
  for (auto& o : owners) o = BlockCache::NewOwnerId();

  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      uint64_t x = uint64_t(t) * 7919 + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const uint64_t owner = owners[(x >> 8) % kOwners];
        const uint32_t block = uint32_t((x >> 16) % 8);
        const char fill = char('a' + block);
        auto pinned =
            cache.PinAs<std::string>(owner, block, StringLoader(100, fill));
        ASSERT_TRUE(pinned.ok());
        // The pinned bytes must be intact regardless of concurrent
        // eviction or EraseOwner.
        ASSERT_EQ((*pinned)->size(), 100u);
        ASSERT_EQ((*pinned)->front(), fill);
        if ((x & 0x3ff) == 0) cache.EraseOwner(owner);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop = true;
  for (auto& th : threads) th.join();
  const BlockCache::Stats stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_LE(stats.charged_bytes, 2000u);
}

}  // namespace
}  // namespace esdb
