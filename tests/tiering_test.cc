#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "balancer/monitor.h"
#include "cluster/esdb.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "storage/block_cache.h"
#include "storage/codec.h"
#include "storage/cold_segment.h"
#include "storage/persistence.h"
#include "storage/shard_store.h"

namespace esdb {
namespace {

namespace fs = std::filesystem;

IndexSpec TestSpec() {
  IndexSpec spec;
  spec.composite_indexes = {{"tenant_id", "created_time"}};
  spec.text_fields = {"title"};
  return spec;
}

WriteOp Insert(int64_t tenant, int64_t record, int64_t time,
               int64_t status = 0) {
  WriteOp op;
  op.type = OpType::kInsert;
  op.doc.Set(kFieldTenantId, Value(tenant));
  op.doc.Set(kFieldRecordId, Value(record));
  op.doc.Set(kFieldCreatedTime, Value(time));
  op.doc.Set("status", Value(status));
  op.doc.Set("title", Value(std::string("order record number ") +
                            std::to_string(record)));
  return op;
}

WriteOp Delete(int64_t tenant, int64_t record, int64_t time) {
  WriteOp op;
  op.type = OpType::kDelete;
  op.doc.Set(kFieldTenantId, Value(tenant));
  op.doc.Set(kFieldRecordId, Value(record));
  op.doc.Set(kFieldCreatedTime, Value(time));
  return op;
}

class TieringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("esdb_tier_" + std::to_string(::testing::UnitTest::GetInstance()
                                              ->random_seed()) +
            "_" + std::to_string(counter_++));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  // Manual refresh, merge after 2 segments so tier transitions are
  // easy to trigger, tiering enabled with a spill dir.
  ShardStore::Options TierOptions(std::shared_ptr<BlockCache> cache,
                                  bool spill = true) {
    ShardStore::Options options;
    options.refresh_doc_count = 0;
    options.merge.max_segments = 2;
    options.tier.enabled = true;
    options.tier.spill_dir = spill ? dir_.string() : "";
    options.tier.cache = std::move(cache);
    return options;
  }

  fs::path dir_;
  static int counter_;
};

int TieringTest::counter_ = 0;

// --- Codec ------------------------------------------------------------

TEST(CodecTest, RoundTripBasics) {
  for (const std::string& input :
       {std::string(""), std::string("a"), std::string("abcd"),
        std::string(1000, 'x'),
        std::string("the quick brown fox jumps over the lazy dog "
                    "the quick brown fox jumps over the lazy dog")}) {
    const std::string comp = CompressBlock(input);
    auto back = DecompressBlock(comp, input.size());
    ASSERT_TRUE(back.ok()) << input.size();
    EXPECT_EQ(*back, input);
  }
}

TEST(CodecTest, RepetitiveInputCompresses) {
  std::string input;
  for (int i = 0; i < 500; ++i) {
    input += "tenant_id=42 status=SHIPPED created_time=1690000000;";
  }
  const std::string comp = CompressBlock(input);
  EXPECT_LT(comp.size(), input.size() / 3);
  auto back = DecompressBlock(comp, input.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, input);
}

TEST(CodecTest, IncompressibleRandomRoundTrips) {
  Rng rng(7);
  std::string input;
  input.reserve(64 << 10);
  for (int i = 0; i < (64 << 10); ++i) {
    input.push_back(char(rng.Next() & 0xff));
  }
  const std::string comp = CompressBlock(input);
  // Worst-case expansion stays small.
  EXPECT_LT(comp.size(), input.size() + input.size() / 1024 + 64);
  auto back = DecompressBlock(comp, input.size());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, input);
}

TEST(CodecTest, CorruptionIsAnErrorNeverACrash) {
  const std::string input(4096, 'z');
  const std::string comp = CompressBlock(input);
  // Wrong raw size (both directions).
  EXPECT_FALSE(DecompressBlock(comp, input.size() + 1).ok());
  EXPECT_FALSE(DecompressBlock(comp, input.size() - 1).ok());
  // Truncated stream.
  EXPECT_FALSE(
      DecompressBlock(std::string_view(comp).substr(0, comp.size() / 2),
                      input.size())
          .ok());
  // Bit flips anywhere must yield OK-with-same-size or Corruption,
  // never UB; exercise a sweep of positions.
  for (size_t i = 0; i < comp.size(); i += 3) {
    std::string bad = comp;
    bad[i] = char(bad[i] ^ 0x5b);
    auto r = DecompressBlock(bad, input.size());
    if (r.ok()) {
      EXPECT_EQ(r->size(), input.size());
    }
  }
  // Garbage.
  EXPECT_FALSE(DecompressBlock("\xff\xff\xff\xff\xff", 100).ok());
}

// --- ColdSegment ------------------------------------------------------

std::unique_ptr<Segment> BuildSegment(const IndexSpec& spec, int n,
                                      uint64_t id = 1) {
  SegmentBuilder builder(&spec);
  for (int i = 0; i < n; ++i) {
    const WriteOp op = Insert(i % 7, 1000 + i, 5000 + i, i % 3);
    builder.Add(op.doc);
  }
  return std::move(builder).Build(id);
}

TEST_F(TieringTest, ColdSegmentRamModeRoundTrip) {
  IndexSpec spec = TestSpec();
  auto cache = std::make_shared<BlockCache>();
  const std::unique_ptr<Segment> seg = BuildSegment(spec, 600);
  auto cold = ColdSegment::FromSegment(*seg, "", cache);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE((*cold)->spilled());
  EXPECT_EQ((*cold)->num_docs(), 600u);
  EXPECT_EQ((*cold)->DiskBytes(), 0u);
  EXPECT_LT((*cold)->compressed_bytes(), (*cold)->total_raw_bytes());

  // The pinned index part answers lookups without stored docs.
  auto index = (*cold)->PinIndex();
  ASSERT_TRUE(index.ok());
  EXPECT_EQ((*index)->num_docs(), 600u);
  EXPECT_GE((*index)->FindByRecordId(1000 + 123), 0);

  // Late-materialized stored docs: every doc, block boundaries
  // included (256-doc blocks -> docs 255/256 straddle one).
  for (DocId d : {DocId(0), DocId(255), DocId(256), DocId(599)}) {
    auto doc = (*cold)->ReadDocument(d);
    ASSERT_TRUE(doc.ok()) << d;
    EXPECT_EQ(doc->record_id(), 1000 + int64_t(d));
  }
  EXPECT_FALSE((*cold)->ReadDocument(600).ok());

  // Full re-inflation equals the original, byte for byte.
  auto full = (*cold)->LoadFull();
  ASSERT_TRUE(full.ok());
  EXPECT_EQ((*full)->Encode(), seg->Encode());
}

TEST_F(TieringTest, ColdSegmentSpillOpenAndCleanup) {
  IndexSpec spec = TestSpec();
  auto cache = std::make_shared<BlockCache>();
  const std::unique_ptr<Segment> seg = BuildSegment(spec, 300, /*id=*/9);
  const std::string path = (dir_ / "cold-test-9.cold").string();
  std::string file_image;
  {
    auto cold = ColdSegment::FromSegment(*seg, path, cache);
    ASSERT_TRUE(cold.ok());
    EXPECT_TRUE((*cold)->spilled());
    EXPECT_TRUE(fs::exists(path));
    EXPECT_GT((*cold)->DiskBytes(), 0u);
    auto bytes = (*cold)->FileBytes();
    ASSERT_TRUE(bytes.ok());
    file_image = *bytes;
    EXPECT_EQ(file_image.size(), fs::file_size(path));

    // Re-open the same file (recovery path) and read through it.
    auto opened = ColdSegment::Open(path, cache);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ((*opened)->id(), 9u);
    auto doc = (*opened)->ReadDocument(150);
    ASSERT_TRUE(doc.ok());
    EXPECT_EQ(doc->record_id(), 1000 + 150);

    auto full = (*opened)->LoadFull();
    ASSERT_TRUE(full.ok());
    EXPECT_EQ((*full)->Encode(), seg->Encode());
  }
  // FromSegment owns its spill file: dropped with the last handle.
  // (The Open handle never owns.)
  EXPECT_FALSE(fs::exists(path));

  // A truncated file is Corruption on open, not UB.
  const std::string bad_path = (dir_ / "bad.cold").string();
  {
    std::ofstream out(bad_path, std::ios::binary);
    out.write(file_image.data(), long(file_image.size() / 3));
  }
  EXPECT_FALSE(ColdSegment::Open(bad_path, cache).ok());
}

// --- ShardStore tier lifecycle ---------------------------------------

TEST_F(TieringTest, DemoteOnMergeThenQueriesMatchHot) {
  IndexSpec spec = TestSpec();
  auto cache = std::make_shared<BlockCache>();
  ShardStore cold_store(&spec, TierOptions(cache));
  ShardStore hot_store(&spec, TierOptions(nullptr, /*spill=*/false));
  hot_store.SetTierCold(false);

  for (int i = 0; i < 500; ++i) {
    const WriteOp op = Insert(i % 5, i, 1000 + i, i % 4);
    ASSERT_TRUE(cold_store.Apply(op).ok());
    ASSERT_TRUE(hot_store.Apply(op).ok());
    if (i % 100 == 99) {
      cold_store.Refresh();
      hot_store.Refresh();
    }
  }
  cold_store.Refresh();
  hot_store.Refresh();

  // Classify cold and let merges demote: the first round is the
  // ordinary policy merge (its output demotes), follow-up rounds
  // rewrite the remaining tier-mismatched segments.
  cold_store.SetTierCold(true);
  EXPECT_TRUE(cold_store.MaybeMerge());
  while (cold_store.MaybeMerge()) {
  }
  {
    const SegmentSnapshot snap = cold_store.Snapshot();
    ASSERT_FALSE(snap->empty());
    for (const SegmentView& view : *snap) EXPECT_TRUE(view.is_cold());
  }
  EXPECT_EQ(cold_store.num_live_docs(), 500u);
  EXPECT_EQ(hot_store.num_live_docs(), 500u);

  // Point reads against the cold tier return the same documents.
  for (int64_t r : {0, 128, 255, 256, 400, 499}) {
    auto a = cold_store.GetByRecordId(r);
    auto b = hot_store.GetByRecordId(r);
    ASSERT_TRUE(a.ok()) << r;
    ASSERT_TRUE(b.ok()) << r;
    EXPECT_EQ(a->Serialize(), b->Serialize());
  }

  // The cache now holds the promoted blocks; a second read hits.
  const BlockCache::Stats before = cache->stats();
  EXPECT_TRUE(cold_store.GetByRecordId(128).ok());
  EXPECT_GT(cache->stats().hits, before.hits);
}

TEST_F(TieringTest, PromotionRestoresHotSegments) {
  IndexSpec spec = TestSpec();
  auto cache = std::make_shared<BlockCache>();
  ShardStore store(&spec, TierOptions(cache));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.Apply(Insert(1, i, 1000 + i)).ok());
  }
  store.Refresh();
  store.SetTierCold(true);
  ASSERT_TRUE(store.MaybeMerge());
  ASSERT_TRUE((*store.Snapshot())[0].is_cold());

  // Writes keep working against a cold shard (new hot segment), and
  // deletes land in the overlay without touching the cold file.
  ASSERT_TRUE(store.Apply(Delete(1, 7, 1007)).ok());
  ASSERT_TRUE(store.Apply(Insert(1, 500, 9999)).ok());
  store.Refresh();
  EXPECT_EQ(store.num_live_docs(), 200u);  // 200 - 1 + 1
  EXPECT_FALSE(store.GetByRecordId(7).ok());
  EXPECT_TRUE(store.GetByRecordId(500).ok());

  // Reclassify hot: the next merge re-inflates everything.
  store.SetTierCold(false);
  EXPECT_TRUE(store.MaybeMerge());
  {
    const SegmentSnapshot snap = store.Snapshot();
    for (const SegmentView& view : *snap) EXPECT_FALSE(view.is_cold());
  }
  EXPECT_EQ(store.num_live_docs(), 200u);
  EXPECT_FALSE(store.GetByRecordId(7).ok());
  EXPECT_TRUE(store.GetByRecordId(123).ok());
  // Promotion erased the dead cold segments' spill files.
  size_t cold_files = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    if (e.path().extension() == ".cold") ++cold_files;
  }
  EXPECT_EQ(cold_files, 0u);
}

// Regression (found by the PR-8 ignored-Status sweep): a failed cold
// read mid-merge must abort the round with the epoch untouched —
// never publish a merged segment missing the unreadable documents.
// Before the fix, RewriteSegmentsLocked skipped any doc whose
// GetDocument failed, so one transient tier/cold-load error during a
// promotion merge silently dropped documents from the shard.
TEST_F(TieringTest, FailedColdReadAbortsMergeWithoutDataLoss) {
  if (!FailPoints::CompiledIn()) GTEST_SKIP() << "fail points compiled out";
  IndexSpec spec = TestSpec();
  auto cache = std::make_shared<BlockCache>();
  ShardStore store(&spec, TierOptions(cache));
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(store.Apply(Insert(1, i, 1000 + i)).ok());
  }
  store.Refresh();
  store.SetTierCold(true);
  ASSERT_TRUE(store.MaybeMerge());
  ASSERT_TRUE((*store.Snapshot())[0].is_cold());

  // Warm the index block so the promotion merge's Pinned() is served
  // from cache and the armed failure lands on a doc-block read.
  ASSERT_TRUE((*store.Snapshot())[0].Pinned().ok());

  store.SetTierCold(false);
  {
    ScopedFailPoint fp(failsite::kColdLoad, FailPoints::Once());
    EXPECT_FALSE(store.MaybeMerge());  // the round aborts...
  }
  EXPECT_EQ(store.num_live_docs(), 200u);  // ...and loses nothing

  // Next round (fault cleared) promotes with every document intact.
  EXPECT_TRUE(store.MaybeMerge());
  EXPECT_EQ(store.num_live_docs(), 200u);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(store.GetByRecordId(i).ok()) << "record " << i;
  }
}

// Satellite 3: the breakdown's components are exact and sum to
// total(), and demotion actually moves bytes out of resident.
TEST_F(TieringTest, SizeBreakdownSplitsResidentFromCold) {
  IndexSpec spec = TestSpec();
  auto cache = std::make_shared<BlockCache>();
  ShardStore store(&spec, TierOptions(cache));
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(store.Apply(Insert(2, i, 1000 + i)).ok());
  }
  store.Refresh();

  const ShardSizeBreakdown hot = store.SizeBreakdown();
  EXPECT_GT(hot.resident_bytes, 0u);
  EXPECT_GT(hot.translog_bytes, 0u);
  EXPECT_EQ(hot.cold_bytes, 0u);
  EXPECT_EQ(hot.total(),
            hot.resident_bytes + hot.translog_bytes + hot.cold_bytes);
  EXPECT_EQ(store.ResidentBytes(), hot.resident_bytes + hot.translog_bytes);

  store.SetTierCold(true);
  ASSERT_TRUE(store.MaybeMerge());
  const ShardSizeBreakdown cold = store.SizeBreakdown();
  EXPECT_GT(cold.cold_bytes, 0u);
  // Spilled cold tier: RAM drops to metadata, far below the hot
  // resident footprint.
  EXPECT_LT(cold.resident_bytes, hot.resident_bytes / 4);
  EXPECT_EQ(cold.total(),
            cold.resident_bytes + cold.translog_bytes + cold.cold_bytes);
}

// --- Persistence ------------------------------------------------------

TEST_F(TieringTest, ColdShardCheckpointRoundTrip) {
  IndexSpec spec = TestSpec();
  auto cache = std::make_shared<BlockCache>();
  const fs::path shard_dir = dir_ / "shard";
  ShardStore::Options options = TierOptions(cache);

  ShardStore store(&spec, options);
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(store.Apply(Insert(3, i, 1000 + i, i % 2)).ok());
  }
  store.Refresh();
  store.SetTierCold(true);
  ASSERT_TRUE(store.MaybeMerge());
  // Delete AFTER demotion: the overlay must survive the checkpoint
  // via the manifest bitmap (cold files are immutable).
  ASSERT_TRUE(store.Apply(Delete(3, 42, 1042)).ok());
  store.Flush();
  ASSERT_TRUE(SaveShard(store, shard_dir.string()).ok());

  RecoveryReport report;
  auto reopened = OpenShard(&spec, options, shard_dir.string(), &report);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(report.segments_loaded, 1u);
  EXPECT_EQ((*reopened)->num_live_docs(), 299u);
  ASSERT_FALSE((*reopened)->Snapshot()->empty());
  EXPECT_TRUE((*(*reopened)->Snapshot())[0].is_cold());
  EXPECT_FALSE((*reopened)->GetByRecordId(42).ok());
  auto doc = (*reopened)->GetByRecordId(100);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("status").as_int(), 0);

  // Save again from the reopened store (cold file copy path) and
  // reopen once more.
  const fs::path dir2 = dir_ / "shard2";
  ASSERT_TRUE(SaveShard(**reopened, dir2.string()).ok());
  auto again = OpenShard(&spec, options, dir2.string());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->num_live_docs(), 299u);
  EXPECT_FALSE((*again)->GetByRecordId(42).ok());
}

// --- TierAdmission ----------------------------------------------------

TEST(TierAdmissionTest, ClassifiesAndDecays) {
  TierAdmission admission(3, TierAdmission::Options{4, 500});
  admission.RecordWrite(0, 100);
  admission.RecordQuery(1);  // 1 < 4: cold
  // Shard 2 never touched: cold.
  std::vector<bool> cold = admission.ClassifyAndDecay();
  EXPECT_EQ(cold, (std::vector<bool>{false, true, true}));
  // Decay halves shard 0 each cycle: 50, 25, 12, 6, 3 -> cold after
  // five quiet cycles.
  for (int i = 0; i < 4; ++i) {
    cold = admission.ClassifyAndDecay();
    EXPECT_FALSE(cold[0]) << i;
  }
  cold = admission.ClassifyAndDecay();
  EXPECT_TRUE(cold[0]);
  // A burst flips it straight back.
  admission.RecordWrite(0, 10);
  EXPECT_FALSE(admission.ClassifyAndDecay()[0]);
}

// --- Esdb control plane ----------------------------------------------

TEST_F(TieringTest, ClusterTieringCycleDemotesIdleShards) {
  Esdb::Options options;
  options.num_shards = 4;
  options.routing = RoutingKind::kHash;
  options.store.refresh_doc_count = 0;
  options.store.merge.max_segments = 2;
  options.tiering.enabled = true;
  options.tiering.spill_dir = dir_.string();
  options.tiering.admission.cold_threshold = 4;
  Esdb db(options);
  ASSERT_NE(db.block_cache(), nullptr);
  ASSERT_NE(db.tier_admission(), nullptr);

  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(db.Insert(Insert(i % 40, i, 1000 + i).doc).ok());
  }
  db.RefreshAll();
  const ShardSizeBreakdown hot = db.SizeBreakdownTotal();
  EXPECT_EQ(hot.cold_bytes, 0u);

  // First cycle: every shard saw writes, all stay hot.
  EXPECT_EQ(db.RunTieringCycle(), 0u);
  // Quiet cycles decay activity to zero: everything goes cold.
  size_t num_cold = 0;
  for (int i = 0; i < 10 && num_cold < options.num_shards; ++i) {
    num_cold = db.RunTieringCycle();
  }
  EXPECT_EQ(num_cold, options.num_shards);
  const ShardSizeBreakdown cold = db.SizeBreakdownTotal();
  EXPECT_GT(cold.cold_bytes, 0u);
  EXPECT_LT(cold.resident_bytes, hot.resident_bytes);

  // Queries against the cold cluster still see every row — and the
  // row and batch engines agree on the cold tier.
  auto r1 = db.ExecuteSql("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->agg_count, 400u);
  auto rows = db.ExecuteSql(
      "SELECT * FROM orders WHERE tenant_id = 7 ORDER BY created_time");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->rows.size(), 10u);
  db.SetBatchExecution(true);
  auto rows_batch = db.ExecuteSql(
      "SELECT * FROM orders WHERE tenant_id = 7 ORDER BY created_time");
  ASSERT_TRUE(rows_batch.ok());
  ASSERT_EQ(rows_batch->rows.size(), rows->rows.size());
  for (size_t i = 0; i < rows->rows.size(); ++i) {
    EXPECT_EQ(rows->rows[i].Serialize(), rows_batch->rows[i].Serialize());
  }

  // A query burst re-heats the queried shards at the next cycle
  // (each broadcast records one activity unit per shard).
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db.ExecuteSql("SELECT COUNT(*) FROM orders").ok());
  }
  EXPECT_EQ(db.RunTieringCycle(), 0u);
}

}  // namespace
}  // namespace esdb
