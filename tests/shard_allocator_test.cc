#include <gtest/gtest.h>

#include "cluster/shard_allocator.h"
#include "common/random.h"

namespace esdb {
namespace {

void CheckInvariants(const ShardAllocator& alloc) {
  ASSERT_TRUE(alloc.allocated());
  // Primary and replica never share a node (fault isolation).
  for (uint32_t shard = 0; shard < alloc.num_shards(); ++shard) {
    EXPECT_NE(alloc.Of(shard).primary, alloc.Of(shard).replica) << shard;
  }
  // Every placement refers to a registered node.
  const auto load = alloc.LoadByNode();
  size_t total = 0;
  for (const auto& [node, count] : load) total += count;
  EXPECT_EQ(total, size_t(alloc.num_shards()) * 2);
}

double LoadSpread(const ShardAllocator& alloc) {
  const auto load = alloc.LoadByNode();
  size_t lo = SIZE_MAX, hi = 0;
  for (const auto& [node, count] : load) {
    lo = std::min(lo, count);
    hi = std::max(hi, count);
  }
  return double(hi) - double(lo);
}

TEST(ShardAllocatorTest, InitialAllocationNeedsTwoNodes) {
  ShardAllocator alloc(64);
  auto moves = alloc.AddNode(1);
  ASSERT_TRUE(moves.ok());
  EXPECT_FALSE(alloc.allocated());
  moves = alloc.AddNode(2);
  ASSERT_TRUE(moves.ok());
  EXPECT_TRUE(moves->empty());  // first allocation is not movement
  CheckInvariants(alloc);
}

TEST(ShardAllocatorTest, DuplicateNodeRejected) {
  ShardAllocator alloc(8);
  ASSERT_TRUE(alloc.AddNode(1).ok());
  EXPECT_FALSE(alloc.AddNode(1).ok());
}

TEST(ShardAllocatorTest, JoinStealsFromBusiest) {
  ShardAllocator alloc(64);
  ASSERT_TRUE(alloc.AddNode(1).ok());
  ASSERT_TRUE(alloc.AddNode(2).ok());
  auto moves = alloc.AddNode(3);
  ASSERT_TRUE(moves.ok());
  EXPECT_FALSE(moves->empty());
  CheckInvariants(alloc);
  // Roughly balanced after the join.
  EXPECT_LE(LoadSpread(alloc), 4.0);
  // Minimal movement: about a third of placements moved, no more.
  EXPECT_LE(moves->size(), size_t(64 * 2 / 3 + 4));
}

TEST(ShardAllocatorTest, RemoveReassignsEverything) {
  ShardAllocator alloc(64);
  for (NodeId node = 1; node <= 4; ++node) {
    ASSERT_TRUE(alloc.AddNode(node).ok());
  }
  auto moves = alloc.RemoveNode(2);
  ASSERT_TRUE(moves.ok());
  CheckInvariants(alloc);
  for (uint32_t shard = 0; shard < 64; ++shard) {
    EXPECT_NE(alloc.Of(shard).primary, 2u);
    EXPECT_NE(alloc.Of(shard).replica, 2u);
  }
  EXPECT_LE(LoadSpread(alloc), 4.0);
}

TEST(ShardAllocatorTest, RemoveBelowTwoNodesFails) {
  ShardAllocator alloc(8);
  ASSERT_TRUE(alloc.AddNode(1).ok());
  ASSERT_TRUE(alloc.AddNode(2).ok());
  EXPECT_FALSE(alloc.RemoveNode(1).ok());
  EXPECT_FALSE(alloc.RemoveNode(99).ok());  // unknown node
}

// Property: random join/leave churn preserves the invariants.
TEST(ShardAllocatorProperty, ChurnKeepsInvariants) {
  Rng rng(55);
  ShardAllocator alloc(32);
  NodeId next_node = 1;
  ASSERT_TRUE(alloc.AddNode(next_node++).ok());
  ASSERT_TRUE(alloc.AddNode(next_node++).ok());
  ASSERT_TRUE(alloc.AddNode(next_node++).ok());
  for (int step = 0; step < 40; ++step) {
    if (rng.Bernoulli(0.5) || alloc.num_nodes() <= 3) {
      ASSERT_TRUE(alloc.AddNode(next_node++).ok());
    } else {
      const auto& nodes = alloc.nodes();
      const NodeId victim = nodes[rng.Uniform(nodes.size())];
      ASSERT_TRUE(alloc.RemoveNode(victim).ok());
    }
    CheckInvariants(alloc);
  }
}

}  // namespace
}  // namespace esdb
