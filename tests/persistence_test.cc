#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/random.h"
#include "cluster/cluster_persistence.h"
#include "storage/persistence.h"

namespace esdb {
namespace {

namespace fs = std::filesystem;

IndexSpec TestSpec() {
  IndexSpec spec;
  spec.composite_indexes = {{"tenant_id", "created_time"}};
  spec.text_fields = {"title"};
  return spec;
}

WriteOp Insert(int64_t record, int64_t time, int64_t status = 0) {
  WriteOp op;
  op.type = OpType::kInsert;
  op.doc.Set(kFieldTenantId, Value(int64_t(1)));
  op.doc.Set(kFieldRecordId, Value(record));
  op.doc.Set(kFieldCreatedTime, Value(time));
  op.doc.Set("status", Value(status));
  op.doc.Set("title", Value(std::string("classic novel")));
  return op;
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("esdb_test_" + std::to_string(::testing::UnitTest::GetInstance()
                                              ->random_seed()) +
            "_" + std::to_string(counter_++));
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  ShardStore::Options Manual() {
    ShardStore::Options options;
    options.refresh_doc_count = 0;
    return options;
  }

  fs::path dir_;
  static int counter_;
};

int PersistenceTest::counter_ = 0;

TEST_F(PersistenceTest, SaveOpenRoundTrip) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i, i % 3)).ok());
  }
  store.Refresh();
  // Some un-refreshed ops live only in the translog tail.
  for (int64_t i = 50; i < 60; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }

  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());
  auto opened = OpenShard(&spec, Manual(), dir_.string());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  (*opened)->Refresh();

  EXPECT_EQ((*opened)->num_live_docs(), 60u);
  for (int64_t i = 0; i < 60; ++i) {
    auto original = i < 50 ? store.GetByRecordId(i) : Result<Document>(
        Status::NotFound("buffered"));
    auto recovered = (*opened)->GetByRecordId(i);
    ASSERT_TRUE(recovered.ok()) << i;
    if (original.ok()) {
      EXPECT_EQ(*original, *recovered);
    }
  }
  // Full-text index survived the segment files.
  const SegmentSnapshot snapshot = (*opened)->Snapshot();
  ASSERT_FALSE(snapshot->empty());
  EXPECT_FALSE((*snapshot)[0]->Postings("title", "novel").empty());
}

// Round trip exactly at the refreshed_seq_ truncation boundary: ops
// below the watermark live only in segments (Flush dropped their log
// entries), ops at/above it live only in the translog tail. Recovery
// must splice the two without losing or double-applying either side.
TEST_F(PersistenceTest, FlushThenRecoverAtTruncationBoundary) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  for (int64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i, i % 3)).ok());
  }
  store.Refresh();
  // Tail ops past the watermark: a fresh insert, an upsert of a
  // refreshed record, and a delete of a refreshed record.
  ASSERT_TRUE(store.Apply(Insert(100, 100)).ok());
  ASSERT_TRUE(store.Apply(Insert(5, 5, /*status=*/99)).ok());
  WriteOp del;
  del.type = OpType::kDelete;
  del.doc.Set(kFieldTenantId, Value(int64_t(1)));
  del.doc.Set(kFieldRecordId, Value(int64_t(7)));
  del.doc.Set(kFieldCreatedTime, Value(int64_t(7)));
  ASSERT_TRUE(store.Apply(del).ok());
  store.Flush();  // drops everything below refreshed_seq_
  EXPECT_EQ(store.translog().num_entries(), 3u);

  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());
  auto opened = OpenShard(&spec, Manual(), dir_.string());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  // Exactly the three tail ops replayed: two buffered upserts (the
  // delete tombstones a segment doc instead of buffering).
  EXPECT_EQ((*opened)->translog().num_entries(), 3u);
  EXPECT_EQ((*opened)->buffered_docs(), 2u);
  (*opened)->Refresh();
  store.Refresh();

  EXPECT_EQ((*opened)->num_live_docs(), store.num_live_docs());
  EXPECT_EQ((*opened)->num_live_docs(), 30u);  // 30 + 1 insert - 1 delete
  EXPECT_FALSE((*opened)->GetByRecordId(7).ok());
  auto upserted = (*opened)->GetByRecordId(5);
  ASSERT_TRUE(upserted.ok());
  EXPECT_EQ(upserted->Get("status").as_int(), 99);
  ASSERT_TRUE((*opened)->GetByRecordId(100).ok());
  for (int64_t i = 0; i < 30; ++i) {
    if (i == 7) continue;
    auto a = store.GetByRecordId(i);
    auto b = (*opened)->GetByRecordId(i);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b) << "record " << i;
  }
}

TEST_F(PersistenceTest, TombstonesSurvive) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, i)).ok());
  }
  store.Refresh();
  WriteOp del;
  del.type = OpType::kDelete;
  del.doc.Set(kFieldTenantId, Value(int64_t(1)));
  del.doc.Set(kFieldRecordId, Value(int64_t(7)));
  del.doc.Set(kFieldCreatedTime, Value(int64_t(7)));
  ASSERT_TRUE(store.Apply(del).ok());

  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());
  auto opened = OpenShard(&spec, Manual(), dir_.string());
  ASSERT_TRUE(opened.ok());
  (*opened)->Refresh();
  EXPECT_FALSE((*opened)->GetByRecordId(7).ok());
  EXPECT_EQ((*opened)->num_live_docs(), 19u);
}

TEST_F(PersistenceTest, SaveIsIdempotentAndOverwrites) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  ASSERT_TRUE(store.Apply(Insert(1, 1)).ok());
  store.Refresh();
  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());
  // Mutate and save again to the same directory.
  ASSERT_TRUE(store.Apply(Insert(2, 2)).ok());
  store.Refresh();
  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());
  auto opened = OpenShard(&spec, Manual(), dir_.string());
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ((*opened)->num_live_docs(), 2u);
}

TEST_F(PersistenceTest, OpenMissingDirectoryFails) {
  IndexSpec spec = TestSpec();
  auto opened = OpenShard(&spec, Manual(), (dir_ / "nope").string());
  EXPECT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), StatusCode::kNotFound);
}

TEST_F(PersistenceTest, CorruptManifestRejected) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  ASSERT_TRUE(store.Apply(Insert(1, 1)).ok());
  store.Refresh();
  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());
  // Clobber the manifest.
  {
    std::FILE* f = std::fopen((dir_ / "MANIFEST").string().c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage", f);
    std::fclose(f);
  }
  auto opened = OpenShard(&spec, Manual(), dir_.string());
  EXPECT_FALSE(opened.ok());
}

TEST_F(PersistenceTest, MissingSegmentFileRejected) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, Manual());
  ASSERT_TRUE(store.Apply(Insert(1, 1)).ok());
  store.Refresh();
  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());
  // Remove the segment file the manifest references.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    if (entry.path().extension() == ".seg") fs::remove(entry.path());
  }
  EXPECT_FALSE(OpenShard(&spec, Manual(), dir_.string()).ok());
}

// Property: random op sequence -> save -> open equals the original.
TEST_F(PersistenceTest, RandomRoundTripProperty) {
  IndexSpec spec = TestSpec();
  Rng rng(77);
  ShardStore store(&spec, Manual());
  for (int i = 0; i < 200; ++i) {
    const int64_t record = int64_t(rng.Uniform(40));
    if (rng.Bernoulli(0.2)) {
      WriteOp del;
      del.type = OpType::kDelete;
      del.doc.Set(kFieldTenantId, Value(int64_t(1)));
      del.doc.Set(kFieldRecordId, Value(record));
      del.doc.Set(kFieldCreatedTime, Value(int64_t(i)));
      ASSERT_TRUE(store.Apply(del).ok());
    } else {
      ASSERT_TRUE(store.Apply(Insert(record, i, i)).ok());
    }
    if (rng.Bernoulli(0.1)) {
      store.Refresh();
      store.MaybeMerge();
    }
    if (rng.Bernoulli(0.05)) store.Flush();
  }

  ASSERT_TRUE(SaveShard(store, dir_.string()).ok());
  auto opened = OpenShard(&spec, Manual(), dir_.string());
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  store.Refresh();
  (*opened)->Refresh();
  EXPECT_EQ((*opened)->num_live_docs(), store.num_live_docs());
  for (int64_t record = 0; record < 40; ++record) {
    auto a = store.GetByRecordId(record);
    auto b = (*opened)->GetByRecordId(record);
    ASSERT_EQ(a.ok(), b.ok()) << record;
    if (a.ok()) {
      EXPECT_EQ(*a, *b);
    }
  }
}


class ClusterPersistenceTest : public PersistenceTest {};

TEST_F(ClusterPersistenceTest, SaveOpenRoundTripWithRules) {
  Esdb::Options options;
  options.num_shards = 8;
  options.routing = RoutingKind::kDynamic;
  options.store.refresh_doc_count = 0;
  Esdb db(options);
  // Rule-split tenant 5, then write under both regimes.
  db.dynamic_routing()->mutable_rules()->Update(100, 4, 5);
  for (int64_t i = 0; i < 120; ++i) {
    Document doc;
    doc.Set(kFieldTenantId, Value(int64_t(i % 2 == 0 ? 5 : 1 + i % 4)));
    doc.Set(kFieldRecordId, Value(i));
    doc.Set(kFieldCreatedTime, Value(i * 3));  // spans the rule boundary
    doc.Set("status", Value(int64_t(i % 3)));
    ASSERT_TRUE(db.Insert(std::move(doc)).ok());
  }
  db.RefreshAll();
  for (int64_t i = 120; i < 130; ++i) {  // leave some in buffers
    Document doc;
    doc.Set(kFieldTenantId, Value(int64_t(5)));
    doc.Set(kFieldRecordId, Value(i));
    doc.Set(kFieldCreatedTime, Value(i * 3));
    ASSERT_TRUE(db.Insert(std::move(doc)).ok());
  }

  ASSERT_TRUE(SaveCluster(db, dir_.string()).ok());
  Esdb::Options reopened_options;
  reopened_options.num_shards = 8;
  reopened_options.routing = RoutingKind::kDynamic;
  reopened_options.store.refresh_doc_count = 0;
  auto reopened = OpenCluster(reopened_options, dir_.string());
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  (*reopened)->RefreshAll();

  EXPECT_EQ((*reopened)->TotalDocs(), 130u);
  // Rules survived: the tenant's read fan-out matches.
  EXPECT_EQ((*reopened)->dynamic_routing()->rules().MaxOffset(5), 4u);
  auto count = (*reopened)->ExecuteSql(
      "SELECT COUNT(*) FROM t WHERE tenant_id = 5");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->agg_count, 70u);
  // Updates of pre-rule records still find their original shard.
  WriteOp op;
  op.type = OpType::kUpdate;
  op.doc.Set(kFieldTenantId, Value(int64_t(5)));
  op.doc.Set(kFieldRecordId, Value(int64_t(0)));
  op.doc.Set(kFieldCreatedTime, Value(int64_t(0)));
  op.doc.Set("status", Value(int64_t(42)));
  ASSERT_TRUE((*reopened)->Apply(op).ok());
  (*reopened)->RefreshAll();
  count = (*reopened)->ExecuteSql("SELECT COUNT(*) FROM t WHERE tenant_id = 5");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->agg_count, 70u);  // replaced, not duplicated
}

TEST_F(ClusterPersistenceTest, ShardCountMismatchRejected) {
  Esdb::Options options;
  options.num_shards = 4;
  options.store.refresh_doc_count = 0;
  Esdb db(options);
  ASSERT_TRUE(SaveCluster(db, dir_.string()).ok());
  Esdb::Options wrong;
  wrong.num_shards = 8;
  EXPECT_FALSE(OpenCluster(wrong, dir_.string()).ok());
}

TEST_F(ClusterPersistenceTest, MissingDirectoryRejected) {
  Esdb::Options options;
  options.num_shards = 4;
  EXPECT_FALSE(OpenCluster(options, (dir_ / "absent").string()).ok());
}

TEST_F(ClusterPersistenceTest, ReplicaClustersRefused) {
  Esdb::Options options;
  options.num_shards = 4;
  options.with_replicas = true;
  EXPECT_FALSE(OpenCluster(options, dir_.string()).ok());
}

}  // namespace
}  // namespace esdb
