#include <gtest/gtest.h>

#include "common/random.h"
#include "replication/replication.h"

namespace esdb {
namespace {

IndexSpec TestSpec() {
  IndexSpec spec;
  spec.composite_indexes = {{"tenant_id", "created_time"}};
  return spec;
}

WriteOp Insert(int64_t record, int64_t time, int64_t status = 0) {
  WriteOp op;
  op.type = OpType::kInsert;
  op.doc.Set(kFieldTenantId, Value(int64_t(1)));
  op.doc.Set(kFieldRecordId, Value(record));
  op.doc.Set(kFieldCreatedTime, Value(time));
  op.doc.Set("status", Value(status));
  return op;
}

WriteOp Delete(int64_t record, int64_t time) {
  WriteOp op;
  op.type = OpType::kDelete;
  op.doc.Set(kFieldTenantId, Value(int64_t(1)));
  op.doc.Set(kFieldRecordId, Value(record));
  op.doc.Set(kFieldCreatedTime, Value(time));
  return op;
}

ShardStore::Options ManualRefresh() {
  ShardStore::Options options;
  options.refresh_doc_count = 0;
  return options;
}

void ExpectSameLiveSet(const ShardStore& a, const ShardStore& b,
                       int64_t max_record) {
  EXPECT_EQ(a.num_live_docs(), b.num_live_docs());
  for (int64_t record = 0; record <= max_record; ++record) {
    auto da = a.GetByRecordId(record);
    auto db = b.GetByRecordId(record);
    ASSERT_EQ(da.ok(), db.ok()) << "record " << record;
    if (da.ok()) {
      EXPECT_EQ(*da, *db);
    }
  }
}

TEST(ReplicateRoundTest, CopiesMissingSegments) {
  IndexSpec spec = TestSpec();
  ShardStore primary(&spec, ManualRefresh());
  ShardStore replica(&spec, ManualRefresh());
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(primary.Apply(Insert(i, i)).ok());
  }
  primary.Refresh();

  auto stats = ReplicateRound(primary, &replica);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->segments_copied, 1u);
  EXPECT_GT(stats->bytes_copied, 0u);
  EXPECT_EQ(replica.num_live_docs(), 20u);
  // Replication decodes segment files; the replica never re-indexes.
  EXPECT_EQ(replica.merged_docs_total(), 0u);
}

TEST(ReplicateRoundTest, IsIdempotent) {
  IndexSpec spec = TestSpec();
  ShardStore primary(&spec, ManualRefresh());
  ShardStore replica(&spec, ManualRefresh());
  ASSERT_TRUE(primary.Apply(Insert(1, 1)).ok());
  primary.Refresh();
  ASSERT_TRUE(ReplicateRound(primary, &replica).ok());
  auto second = ReplicateRound(primary, &replica);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->segments_copied, 0u);
  EXPECT_EQ(second->bytes_copied, 0u);
}

TEST(ReplicateRoundTest, PropagatesDeletesOnExistingSegments) {
  IndexSpec spec = TestSpec();
  ShardStore primary(&spec, ManualRefresh());
  ShardStore replica(&spec, ManualRefresh());
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(primary.Apply(Insert(i, i)).ok());
  }
  primary.Refresh();
  ASSERT_TRUE(ReplicateRound(primary, &replica).ok());
  // Tombstone on an already-replicated segment.
  ASSERT_TRUE(primary.Apply(Delete(3, 3)).ok());
  auto stats = ReplicateRound(primary, &replica);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->segments_copied, 1u);  // re-copied for the tombstone
  EXPECT_FALSE(replica.GetByRecordId(3).ok());
}

TEST(ReplicateRoundTest, DropsSegmentsMergedAway) {
  IndexSpec spec = TestSpec();
  ShardStore::Options options = ManualRefresh();
  options.merge.max_segments = 1;
  ShardStore primary(&spec, options);
  ShardStore replica(&spec, options);
  for (int round = 0; round < 3; ++round) {
    for (int64_t i = 0; i < 5; ++i) {
      ASSERT_TRUE(primary.Apply(Insert(round * 10 + i, i)).ok());
    }
    primary.Refresh();
    ASSERT_TRUE(ReplicateRound(primary, &replica).ok());
  }
  EXPECT_EQ(replica.num_segments(), 3u);
  primary.MaybeMerge();
  auto stats = ReplicateRound(primary, &replica);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->segments_dropped, 0u);
  EXPECT_EQ(replica.num_segments(), primary.num_segments());
  EXPECT_EQ(replica.num_live_docs(), 15u);
}

class ReplicatedShardTest : public ::testing::TestWithParam<ReplicationMode> {
 protected:
  IndexSpec spec_ = TestSpec();
};

TEST_P(ReplicatedShardTest, ReplicaConvergesToPrimary) {
  ReplicatedShard shard(&spec_, ManualRefresh(), GetParam());
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const int64_t record = int64_t(rng.Uniform(50));
    WriteOp op = rng.Bernoulli(0.2) ? Delete(record, i)
                                    : Insert(record, i, int64_t(i));
    ASSERT_TRUE(shard.Apply(op).ok());
    if (i % 30 == 29) {
      ASSERT_TRUE(shard.Refresh().ok());
    }
  }
  ASSERT_TRUE(shard.Refresh().ok());
  ExpectSameLiveSet(*shard.primary(), *shard.replica(), 50);
}

TEST_P(ReplicatedShardTest, FailoverRecoversEverything) {
  ReplicatedShard shard(&spec_, ManualRefresh(), GetParam());
  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(shard.Apply(Insert(i, i, i)).ok());
    if (i == 25) {
      ASSERT_TRUE(shard.Refresh().ok());
    }
  }
  // Ops 26..49 are not replicated as segments yet — the replica must
  // recover them from its synchronized translog on promotion.
  const size_t primary_docs =
      shard.primary()->num_live_docs() + shard.primary()->buffered_docs();
  ASSERT_EQ(primary_docs, 50u);

  auto promoted = std::move(shard).Failover();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  (*promoted)->Refresh();
  EXPECT_EQ((*promoted)->num_live_docs(), 50u);
  for (int64_t i = 0; i < 50; ++i) {
    EXPECT_TRUE((*promoted)->GetByRecordId(i).ok()) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, ReplicatedShardTest,
                         ::testing::Values(ReplicationMode::kLogical,
                                           ReplicationMode::kPhysical),
                         [](const auto& info) {
                           return info.param == ReplicationMode::kLogical
                                      ? "Logical"
                                      : "Physical";
                         });

TEST(ReplicationCostTest, PhysicalAvoidsReplicaIndexing) {
  IndexSpec spec = TestSpec();
  ReplicatedShard logical(&spec, ManualRefresh(), ReplicationMode::kLogical);
  ReplicatedShard physical(&spec, ManualRefresh(),
                           ReplicationMode::kPhysical);
  for (int64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(logical.Apply(Insert(i, i)).ok());
    ASSERT_TRUE(physical.Apply(Insert(i, i)).ok());
    if (i % 50 == 49) {
      ASSERT_TRUE(logical.Refresh().ok());
      ASSERT_TRUE(physical.Refresh().ok());
    }
  }
  // Logical: the replica re-indexed every doc. Physical: none.
  EXPECT_EQ(logical.stats().replica_docs_indexed, 300u);
  EXPECT_EQ(physical.stats().replica_docs_indexed, 0u);
  EXPECT_GT(physical.stats().bytes_copied, 0u);
  EXPECT_EQ(logical.stats().bytes_copied, 0u);
}

TEST(ReplicationCostTest, PreReplicationShipsMergesImmediately) {
  IndexSpec spec = TestSpec();
  ShardStore::Options options = ManualRefresh();
  options.merge.max_segments = 2;
  ReplicatedShard shard(&spec, options, ReplicationMode::kPhysical);
  for (int round = 0; round < 6; ++round) {
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(shard.Apply(Insert(round * 100 + i, i)).ok());
    }
    ASSERT_TRUE(shard.Refresh().ok());
  }
  // Merges happened and were pre-replicated (extra rounds beyond one
  // per refresh).
  EXPECT_GT(shard.primary()->merged_docs_total(), 0u);
  EXPECT_GT(shard.stats().rounds, 6u);
  ExpectSameLiveSet(*shard.primary(), *shard.replica(), 600);
}

TEST(ReplicationTest, TranslogTailStaysBounded) {
  IndexSpec spec = TestSpec();
  ReplicatedShard shard(&spec, ManualRefresh(), ReplicationMode::kPhysical);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(shard.Apply(Insert(i, i)).ok());
    if (i % 10 == 9) {
      ASSERT_TRUE(shard.Refresh().ok());
    }
  }
  // After each replication round the replica translog is truncated to
  // the un-replicated tail (here: empty).
  EXPECT_EQ(shard.primary()->translog().end_seq(), 100u);
}

}  // namespace
}  // namespace esdb
