// Balancer migration telemetry (balancer/shard_heat.h). The property
// the migration path leans on: the decayed per-shard counters are a
// pure function of the (trace, decay-boundary) sequence — NOT of how
// the recordings were batched between boundaries — so two observers
// ticking at different granularities propose the same migration
// candidate for the same replayed Zipf trace.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "balancer/shard_heat.h"
#include "common/random.h"
#include "common/zipf.h"

namespace esdb {
namespace {

// One recorded write in a replayable trace.
struct TraceEvent {
  ShardId shard = 0;
  uint64_t rows = 0;
  uint64_t micros = 0;
};

// A skewed trace with `windows` decay windows of `per_window` events.
std::vector<TraceEvent> ZipfTrace(uint32_t num_shards, int windows,
                                  int per_window, uint64_t seed) {
  Rng rng(seed);
  ZipfGenerator zipf(num_shards, 1.2);
  std::vector<TraceEvent> trace;
  trace.reserve(size_t(windows) * size_t(per_window));
  for (int i = 0; i < windows * per_window; ++i) {
    TraceEvent e;
    e.shard = ShardId(zipf.Sample(rng));
    e.rows = 1 + rng.Uniform(4);
    e.micros = rng.Uniform(200);
    trace.push_back(e);
  }
  return trace;
}

// Replays `trace` into a tracker, calling Decay() every
// `events_per_window` events and batching consecutive recordings in
// groups of `batch` (a batch accumulates rows/micros per shard before
// touching the tracker — how a coarser-ticking observer would report).
// Decay boundaries land at the same trace offsets regardless of
// batching, which is the contract under test.
void Replay(ShardHeatTracker* tracker, const std::vector<TraceEvent>& trace,
            int events_per_window, int batch) {
  std::vector<uint64_t> rows(tracker->num_shards(), 0);
  std::vector<uint64_t> micros(tracker->num_shards(), 0);
  std::vector<ShardId> touched;
  auto flush = [&] {
    for (const ShardId shard : touched) {
      if (rows[shard] > 0) tracker->RecordWrite(shard, rows[shard]);
      if (micros[shard] > 0) tracker->RecordProcessing(shard, micros[shard]);
      rows[shard] = 0;
      micros[shard] = 0;
    }
    touched.clear();
  };
  int in_batch = 0;
  for (size_t i = 0; i < trace.size(); ++i) {
    const TraceEvent& e = trace[i];
    if (rows[e.shard] == 0 && micros[e.shard] == 0) touched.push_back(e.shard);
    rows[e.shard] += e.rows;
    micros[e.shard] += e.micros;
    if (++in_batch >= batch) {
      flush();
      in_batch = 0;
    }
    if ((i + 1) % size_t(events_per_window) == 0) {
      flush();
      in_batch = 0;
      tracker->Decay();
    }
  }
  flush();
}

TEST(ShardHeatTrackerTest, CountersAccumulateAndScore) {
  ShardHeatTracker tracker(4);
  tracker.RecordWrite(1);
  tracker.RecordWrite(1, 9);
  tracker.RecordProcessing(1, 640);
  EXPECT_EQ(tracker.heat(1).rows, 10u);
  EXPECT_EQ(tracker.heat(1).processing_micros, 640u);
  EXPECT_DOUBLE_EQ(tracker.Score(1), 10.0 + 640.0 / 64.0);
  EXPECT_DOUBLE_EQ(tracker.Score(0), 0.0);
}

TEST(ShardHeatTrackerTest, DecayHalvesAndFadesOut) {
  ShardHeatTracker tracker(2);
  tracker.RecordWrite(0, 1000);
  tracker.Decay();
  EXPECT_EQ(tracker.heat(0).rows, 500u);
  tracker.Decay();
  EXPECT_EQ(tracker.heat(0).rows, 250u);
  // Integer decay reaches exactly zero — stale shards stop competing.
  for (int i = 0; i < 20; ++i) tracker.Decay();
  EXPECT_EQ(tracker.heat(0).rows, 0u);
}

TEST(ShardHeatTrackerTest, DecayPermilleIsConfigurable) {
  ShardHeatTracker::Options options;
  options.decay_permille = 900;
  ShardHeatTracker tracker(1, options);
  tracker.RecordWrite(0, 1000);
  tracker.Decay();
  EXPECT_EQ(tracker.heat(0).rows, 900u);
}

// The satellite's headline property: replaying the same Zipf trace
// with the same decay boundaries yields bit-identical counters — and
// therefore the identical migration plan — no matter how the
// recordings were batched between those boundaries.
TEST(ShardHeatTrackerTest, BatchingInvariantUnderReplayedZipfTrace) {
  const uint32_t kShards = 64;
  const int kWindows = 8;
  const int kPerWindow = 500;
  const auto trace = ZipfTrace(kShards, kWindows, kPerWindow, 0x2a11);

  // Shard -> node: 8 nodes, modulo layout.
  std::vector<NodeId> placement(kShards);
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    placement[shard] = NodeId(shard % 8);
  }
  std::vector<NodeId> alive;
  for (NodeId node = 0; node < 8; ++node) alive.push_back(node);

  MigrationPlanner::Options popts;
  popts.min_node_score = 10;
  const MigrationPlanner planner(popts);

  std::vector<MigrationPlan> reference;
  std::vector<ShardHeatTracker::Heat> canon;
  bool first = true;
  for (const int batch : {1, 7, 100, kPerWindow}) {
    ShardHeatTracker tracker(kShards);
    Replay(&tracker, trace, kPerWindow, batch);
    // Counters must be bit-identical across batchings, per shard.
    if (first) {
      for (uint32_t s = 0; s < kShards; ++s) canon.push_back(tracker.heat(s));
    } else {
      for (uint32_t s = 0; s < kShards; ++s) {
        EXPECT_EQ(tracker.heat(s).rows, canon[s].rows)
            << "shard " << s << " batch " << batch;
        EXPECT_EQ(tracker.heat(s).processing_micros,
                  canon[s].processing_micros)
            << "shard " << s << " batch " << batch;
      }
    }

    const auto plans = planner.Decide(tracker, placement, alive, {});
    ASSERT_FALSE(plans.empty()) << "batch " << batch;
    if (first) {
      reference = plans;
      first = false;
    } else {
      ASSERT_EQ(plans.size(), reference.size()) << "batch " << batch;
      for (size_t i = 0; i < plans.size(); ++i) {
        EXPECT_EQ(plans[i].shard, reference[i].shard) << "batch " << batch;
        EXPECT_EQ(plans[i].from, reference[i].from) << "batch " << batch;
        EXPECT_EQ(plans[i].to, reference[i].to) << "batch " << batch;
      }
    }
  }
}

// Planner mechanics on hand-built heat distributions.

class MigrationPlannerTest : public ::testing::Test {
 protected:
  // 8 shards on 4 nodes, modulo placement.
  MigrationPlannerTest() : tracker_(8) {
    for (uint32_t shard = 0; shard < 8; ++shard) {
      placement_.push_back(NodeId(shard % 4));
    }
    for (NodeId node = 0; node < 4; ++node) alive_.push_back(node);
  }

  ShardHeatTracker tracker_;
  std::vector<NodeId> placement_;
  std::vector<NodeId> alive_;
};

TEST_F(MigrationPlannerTest, IdleClusterProposesNothing) {
  const MigrationPlanner planner;
  EXPECT_TRUE(planner.Decide(tracker_, placement_, alive_, {}).empty());
}

TEST_F(MigrationPlannerTest, BalancedClusterProposesNothing) {
  for (uint32_t shard = 0; shard < 8; ++shard) {
    tracker_.RecordWrite(shard, 1000);
  }
  const MigrationPlanner planner;
  EXPECT_TRUE(planner.Decide(tracker_, placement_, alive_, {}).empty());
}

TEST_F(MigrationPlannerTest, MovesHottestShardOffTheBusiestNode) {
  // Node 0 hosts shards 0 and 4; make 4 hot and 0 warm so node 0
  // dominates but moving shard 4 still strictly improves.
  tracker_.RecordWrite(0, 400);
  tracker_.RecordWrite(4, 2000);
  tracker_.RecordWrite(1, 100);  // some background on node 1
  const MigrationPlanner planner;
  const auto plans = planner.Decide(tracker_, placement_, alive_, {});
  ASSERT_EQ(plans.size(), 1u);
  EXPECT_EQ(plans[0].shard, 4u);
  EXPECT_EQ(plans[0].from, 0u);
  // Idlest node, ties toward the smaller ordinal: nodes 2 and 3 are
  // both empty -> node 2.
  EXPECT_EQ(plans[0].to, 2u);
}

TEST_F(MigrationPlannerTest, WholeLoadShardDoesNotBounce) {
  // Node 0's entire load is one shard: moving it just relocates the
  // hotspot (the spread cannot shrink), so the planner must refuse —
  // otherwise the shard ping-pongs between nodes forever.
  tracker_.RecordWrite(0, 5000);
  const MigrationPlanner planner;
  EXPECT_TRUE(planner.Decide(tracker_, placement_, alive_, {}).empty());
}

TEST_F(MigrationPlannerTest, RespectsMaxConcurrentAndMigratingSet) {
  tracker_.RecordWrite(0, 400);
  tracker_.RecordWrite(4, 2000);
  MigrationPlanner::Options options;
  options.max_concurrent = 2;
  const MigrationPlanner planner(options);
  // Two in flight already: no budget.
  EXPECT_TRUE(
      planner.Decide(tracker_, placement_, alive_, {ShardId(6), ShardId(7)})
          .empty());
  // The hot shard itself mid-migration: it cannot be re-proposed.
  const auto plans =
      planner.Decide(tracker_, placement_, alive_, {ShardId(4)});
  for (const auto& plan : plans) EXPECT_NE(plan.shard, 4u);
}

TEST_F(MigrationPlannerTest, MinNodeScoreFloorSilencesQuietClusters) {
  tracker_.RecordWrite(4, 40);
  tracker_.RecordWrite(0, 10);
  MigrationPlanner::Options options;
  options.min_node_score = 1000;
  const MigrationPlanner planner(options);
  EXPECT_TRUE(planner.Decide(tracker_, placement_, alive_, {}).empty());
}

TEST_F(MigrationPlannerTest, NeedsTwoAliveNodes) {
  tracker_.RecordWrite(0, 5000);
  const MigrationPlanner planner;
  EXPECT_TRUE(
      planner.Decide(tracker_, placement_, {NodeId(0)}, {}).empty());
}

TEST_F(MigrationPlannerTest, IgnoresShardsOnDeadNodes) {
  // Node 3 is gone from `alive`; its shards are unroutable load and
  // must be invisible to the planner (they'll be re-placed by
  // failover, not migration).
  tracker_.RecordWrite(3, 100000);  // shard 3 lives on dead node 3
  tracker_.RecordWrite(0, 50);
  std::vector<NodeId> alive = {NodeId(0), NodeId(1), NodeId(2)};
  const MigrationPlanner planner;
  for (const auto& plan : planner.Decide(tracker_, placement_, alive, {})) {
    EXPECT_NE(plan.shard, 3u);
    EXPECT_NE(plan.from, 3u);
    EXPECT_NE(plan.to, 3u);
  }
}

}  // namespace
}  // namespace esdb
