#include <gtest/gtest.h>

#include <algorithm>

#include "common/histogram.h"
#include "sim/cluster_sim.h"

namespace esdb {
namespace {

// Small, fast configuration: 4 nodes, 64 shards, modest rates.
ClusterSim::Options FastOptions(RoutingKind routing) {
  ClusterSim::Options options;
  options.num_nodes = 4;
  options.num_shards = 64;
  options.node_capacity = 10000;
  options.routing = routing;
  options.generate_rate = 20000;
  options.workload.num_tenants = 10000;
  options.workload.theta = 1.0;
  options.monitor_window = kMicrosPerSecond / 2;
  options.consensus.interval = kMicrosPerSecond;  // fast T for tests
  options.balancer.max_offset = 64;
  // ESDB write clients (hotspot isolation) accompany dynamic routing;
  // the baselines use plain transport clients (Section 3.1).
  options.hotspot_isolation = (routing == RoutingKind::kDynamic);
  return options;
}

TEST(ClusterSimTest, ConservationUnderLightLoad) {
  // Uniform workload well under capacity: essentially everything
  // completes with sub-tick delays.
  ClusterSim::Options options = FastOptions(RoutingKind::kHash);
  options.workload.theta = 0.0;
  options.generate_rate = 5000;
  ClusterSim sim(options);
  sim.Run(5 * kMicrosPerSecond);
  const auto& m = sim.metrics();
  EXPECT_GT(m.generated, 24000u);
  EXPECT_GE(m.generated, m.completed);
  EXPECT_GT(double(m.completed), 0.95 * double(m.generated));
  EXPECT_LT(m.delay.Quantile(0.5), 0.5);
}

TEST(ClusterSimTest, DeterministicBySeed) {
  ClusterSim a(FastOptions(RoutingKind::kDynamic));
  ClusterSim b(FastOptions(RoutingKind::kDynamic));
  a.Run(3 * kMicrosPerSecond);
  b.Run(3 * kMicrosPerSecond);
  EXPECT_EQ(a.metrics().generated, b.metrics().generated);
  EXPECT_EQ(a.metrics().completed, b.metrics().completed);
  EXPECT_EQ(a.metrics().node_completed, b.metrics().node_completed);
}

TEST(ClusterSimTest, SkewSaturatesHashingButNotDynamic) {
  // Figure 10/11 shape: under heavy skew the hot tenant's single node
  // caps the cluster for hashing while dynamic secondary hashing keeps
  // up. (Zipf 2.0 on this 4-node toy cluster concentrates ~61% of all
  // writes on one shard, far past one node's capacity.)
  ClusterSim::Options options = FastOptions(RoutingKind::kHash);
  options.workload.theta = 2.0;
  // Offer close to the balanced cluster ceiling (4 nodes x 10000 /
  // 1.55 units per doc ~ 25.8K/s) so headroom exposes the policies.
  options.generate_rate = 25000;
  ClusterSim hash_sim(options);
  hash_sim.Run(10 * kMicrosPerSecond);

  options.routing = RoutingKind::kDynamic;
  ClusterSim dyn_sim(options);
  dyn_sim.Run(10 * kMicrosPerSecond);

  const double hash_tput = hash_sim.metrics().Throughput();
  const double dyn_tput = dyn_sim.metrics().Throughput();
  EXPECT_GT(dyn_tput, 1.2 * hash_tput)
      << "hash " << hash_tput << " dyn " << dyn_tput;
  EXPECT_GT(dyn_sim.rules_committed(), 0u);
  // Delays likewise: hashing queues grow, dynamic stays bounded.
  EXPECT_GT(hash_sim.metrics().delay.Mean(),
            dyn_sim.metrics().delay.Mean());
}

TEST(ClusterSimTest, DoubleHashingBalancesNodes) {
  // Figure 12 shape: per-node throughput stddev under skew is far
  // smaller for double hashing than plain hashing.
  ClusterSim::Options options = FastOptions(RoutingKind::kHash);
  options.double_hash_offset = 64;
  ClusterSim hash_sim(options);
  hash_sim.Run(8 * kMicrosPerSecond);

  options.routing = RoutingKind::kDoubleHash;
  ClusterSim dh_sim(options);
  dh_sim.Run(8 * kMicrosPerSecond);

  const double hash_stddev =
      PopulationStdDev(hash_sim.metrics().NodeThroughputs());
  const double dh_stddev =
      PopulationStdDev(dh_sim.metrics().NodeThroughputs());
  EXPECT_LT(dh_stddev, hash_stddev / 2)
      << "hash " << hash_stddev << " dh " << dh_stddev;
}

TEST(ClusterSimTest, DynamicAdaptsToHotspotShift) {
  // Figure 14 shape: a hotspot shift dents throughput, then new rules
  // restore it.
  ClusterSim sim(FastOptions(RoutingKind::kDynamic));
  sim.Run(8 * kMicrosPerSecond);  // warm up, rules committed
  const uint64_t rules_before = sim.rules_committed();
  sim.ResetMetrics();
  sim.ShiftHotspots(5000);
  sim.Run(12 * kMicrosPerSecond);
  EXPECT_GT(sim.rules_committed(), rules_before);
  // Recovery: the last samples' throughput is close to the offered
  // rate again.
  const auto& timeline = sim.metrics().timeline;
  ASSERT_GE(timeline.size(), 4u);
  const double tail = timeline.back().throughput;
  EXPECT_GT(tail, 0.85 * 20000);
}

TEST(ClusterSimTest, PhysicalReplicationRaisesCeiling) {
  // Figure 15 shape: same offered load, physical replication completes
  // more and burns less CPU.
  ClusterSim::Options options = FastOptions(RoutingKind::kDoubleHash);
  options.double_hash_offset = 64;
  options.generate_rate = 30000;  // beyond logical ceiling
  options.replication = ReplicationMode::kLogical;
  ClusterSim logical(options);
  logical.Run(8 * kMicrosPerSecond);

  options.replication = ReplicationMode::kPhysical;
  ClusterSim physical(options);
  physical.Run(8 * kMicrosPerSecond);

  EXPECT_GT(physical.metrics().Throughput(),
            1.15 * logical.metrics().Throughput());
}

TEST(ClusterSimTest, ShardSizesFollowPolicySkew) {
  // Figure 13(d) shape: hashing's max/min shard-size ratio is far
  // larger than dynamic secondary hashing's.
  auto max_min_ratio = [](const std::vector<uint64_t>& docs) {
    uint64_t lo = UINT64_MAX, hi = 0;
    for (uint64_t d : docs) {
      lo = std::min(lo, d + 1);  // +1: avoid div by zero on empties
      hi = std::max(hi, d + 1);
    }
    return double(hi) / double(lo);
  };
  ClusterSim hash_sim(FastOptions(RoutingKind::kHash));
  hash_sim.Run(8 * kMicrosPerSecond);
  ClusterSim dyn_sim(FastOptions(RoutingKind::kDynamic));
  dyn_sim.Run(8 * kMicrosPerSecond);
  EXPECT_GT(max_min_ratio(hash_sim.metrics().shard_docs),
            max_min_ratio(dyn_sim.metrics().shard_docs));
}

TEST(ClusterSimTest, CpuUsageBounded) {
  ClusterSim sim(FastOptions(RoutingKind::kDynamic));
  sim.Run(5 * kMicrosPerSecond);
  for (double usage :
       sim.metrics().NodeCpuUsage(FastOptions(RoutingKind::kDynamic)
                                      .node_capacity)) {
    EXPECT_GE(usage, 0.0);
    EXPECT_LE(usage, 1.0 + 1e-9);
  }
}

TEST(ClusterSimTest, RateChangeTakesEffect) {
  ClusterSim sim(FastOptions(RoutingKind::kDoubleHash));
  sim.Run(2 * kMicrosPerSecond);
  sim.ResetMetrics();
  sim.SetRate(1000);
  sim.Run(4 * kMicrosPerSecond);
  EXPECT_NEAR(double(sim.metrics().generated), 4000, 200);
}

TEST(ClusterSimTest, TimelineSamplesCoverRun) {
  ClusterSim sim(FastOptions(RoutingKind::kDynamic));
  sim.Run(5 * kMicrosPerSecond);
  EXPECT_GE(sim.metrics().timeline.size(), 4u);
  for (size_t i = 1; i < sim.metrics().timeline.size(); ++i) {
    EXPECT_GT(sim.metrics().timeline[i].time,
              sim.metrics().timeline[i - 1].time);
  }
}

TEST(ClusterSimTest, BacklogGrowsWhenOverloaded) {
  ClusterSim::Options options = FastOptions(RoutingKind::kHash);
  options.workload.theta = 2.0;  // extreme skew
  options.generate_rate = 30000;
  ClusterSim sim(options);
  sim.Run(5 * kMicrosPerSecond);
  EXPECT_GT(sim.backlog(), 0u);
  EXPECT_LT(sim.metrics().completed, sim.metrics().generated);
}


TEST(ClusterSimTest, BackpressureThrottlesWholeClientWithoutIsolation) {
  // A plain transport client head-of-line blocks on the hot worker:
  // generated docs pile up client-side, so the backlog far exceeds
  // what the worker queues alone would hold.
  ClusterSim::Options options = FastOptions(RoutingKind::kHash);
  options.workload.theta = 2.0;
  options.generate_rate = 30000;
  options.hotspot_isolation = false;
  ClusterSim sim(options);
  sim.Run(6 * kMicrosPerSecond);
  // Severe under-delivery: completions well below the offered load.
  EXPECT_LT(double(sim.metrics().completed),
            0.8 * double(sim.metrics().generated));
}

TEST(ClusterSimTest, HotspotIsolationProtectsColdTenants) {
  // Same overload, but ESDB write clients: only the hot destination
  // waits; the rest of the workload keeps completing, so total
  // completions are strictly better than the head-of-line case.
  ClusterSim::Options base = FastOptions(RoutingKind::kHash);
  base.workload.theta = 2.0;
  base.generate_rate = 30000;

  base.hotspot_isolation = false;
  ClusterSim blocked(base);
  blocked.Run(8 * kMicrosPerSecond);

  base.hotspot_isolation = true;
  ClusterSim isolated(base);
  isolated.Run(8 * kMicrosPerSecond);

  EXPECT_GT(isolated.metrics().completed, blocked.metrics().completed);
}

TEST(ClusterSimTest, SimWorkersAreByteIdenticalToSerial) {
  // Sim workers (Options::sim_threads): node ticks run as tasks on a
  // thread pool, fill private scratch, and merge serially in node
  // order. Same merge statements in the same order means the parallel
  // run must equal the serial run EXACTLY — including float-addition
  // order — across every metric, not just approximately.
  for (RoutingKind routing : {RoutingKind::kHash, RoutingKind::kDynamic}) {
    ClusterSim::Options serial_options = FastOptions(routing);
    serial_options.sim_threads = 0;
    ClusterSim::Options pooled_options = FastOptions(routing);
    pooled_options.sim_threads = 3;

    ClusterSim serial(serial_options);
    ClusterSim pooled(pooled_options);
    serial.Run(4 * kMicrosPerSecond);
    pooled.Run(4 * kMicrosPerSecond);

    const auto& a = serial.metrics();
    const auto& b = pooled.metrics();
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.delay.count(), b.delay.count());
    EXPECT_EQ(a.delay.sum(), b.delay.sum());  // exact: same fp order
    EXPECT_EQ(a.delay.min(), b.delay.min());
    EXPECT_EQ(a.delay.max(), b.delay.max());
    EXPECT_EQ(a.max_delay, b.max_delay);
    EXPECT_EQ(a.node_busy_seconds, b.node_busy_seconds);
    EXPECT_EQ(a.node_completed, b.node_completed);
    EXPECT_EQ(a.shard_completed, b.shard_completed);
    EXPECT_EQ(a.shard_docs, b.shard_docs);
    EXPECT_EQ(a.measured_time, b.measured_time);
    ASSERT_EQ(a.timeline.size(), b.timeline.size());
    for (size_t i = 0; i < a.timeline.size(); ++i) {
      EXPECT_EQ(a.timeline[i].time, b.timeline[i].time);
      EXPECT_EQ(a.timeline[i].throughput, b.timeline[i].throughput);
      EXPECT_EQ(a.timeline[i].avg_delay, b.timeline[i].avg_delay);
      EXPECT_EQ(a.timeline[i].max_delay, b.timeline[i].max_delay);
      EXPECT_EQ(a.timeline[i].cpu, b.timeline[i].cpu);
      EXPECT_EQ(a.timeline[i].backlog, b.timeline[i].backlog);
    }
    EXPECT_EQ(serial.backlog(), pooled.backlog());
    EXPECT_EQ(serial.rules_committed(), pooled.rules_committed());
  }
}

TEST(ClusterSimTest, TenKShardsTenantChurnParallelEqualsSerial) {
  // Scale the sim to 10k shards with tenant churn on and assert the
  // two headline scenario properties at once: pooled node ticks stay
  // byte-identical to the serial walk, and queue memory stays bounded
  // by the client queue limit — not by shard count or run length.
  // (The full fault-injection scenarios live in
  // cluster_scenario_test.cc.)
  auto make_options = [](uint32_t threads) {
    ClusterSim::Options options;
    options.num_nodes = 16;
    options.num_shards = 10000;
    options.node_capacity = 20000;
    options.routing = RoutingKind::kDynamic;
    options.hotspot_isolation = true;
    options.generate_rate = 120000;
    options.workload.num_tenants = 50000;
    options.workload.theta = 1.2;
    options.monitor_window = kMicrosPerSecond / 2;
    options.consensus.interval = kMicrosPerSecond;
    options.balancer.max_offset = 64;
    options.churn_interval = kMicrosPerSecond;
    options.churn_shift = 2000;
    options.sim_threads = threads;
    return options;
  };
  ClusterSim serial(make_options(0));
  ClusterSim pooled(make_options(4));
  serial.Run(5 * kMicrosPerSecond);
  pooled.Run(5 * kMicrosPerSecond);

  const auto& a = serial.metrics();
  const auto& b = pooled.metrics();
  EXPECT_GT(a.generated, 500000u);
  EXPECT_EQ(a.generated, b.generated);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.delay.sum(), b.delay.sum());  // exact: same fp order
  EXPECT_EQ(a.node_busy_seconds, b.node_busy_seconds);
  EXPECT_EQ(a.node_completed, b.node_completed);
  EXPECT_EQ(a.shard_completed, b.shard_completed);
  EXPECT_EQ(a.shard_docs, b.shard_docs);
  EXPECT_EQ(serial.backlog(), pooled.backlog());
  EXPECT_EQ(serial.queue_entries(), pooled.queue_entries());
  // Bounded memory: queue entries are orders of magnitude below one
  // per shard-tick (50 ticks x 10k shards); churn must not leak
  // held batches.
  EXPECT_LT(serial.queue_entries(), 10000u);
}

TEST(ClusterSimTest, HeldHotWritesEventuallyDeliver) {
  // Drive a burst past the hot worker's queue limit, then stop the
  // load: the held client-side batches must drain to zero.
  ClusterSim::Options options = FastOptions(RoutingKind::kHash);
  options.workload.theta = 2.0;
  options.generate_rate = 30000;
  options.hotspot_isolation = true;
  ClusterSim sim(options);
  sim.Run(5 * kMicrosPerSecond);
  EXPECT_GT(sim.backlog(), 0u);
  sim.SetRate(0);
  sim.Run(30 * kMicrosPerSecond);
  EXPECT_EQ(sim.backlog(), 0u);
  EXPECT_EQ(sim.metrics().completed + 0, sim.metrics().generated);
}

}  // namespace
}  // namespace esdb
