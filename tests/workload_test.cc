#include <gtest/gtest.h>

#include <map>
#include <set>

#include "query/parser.h"
#include "workload/generator.h"

namespace esdb {
namespace {

WorkloadGenerator::Options SmallOptions() {
  WorkloadGenerator::Options options;
  options.num_tenants = 100;
  options.theta = 1.0;
  options.num_sub_attributes = 40;
  options.sub_attributes_per_row = 5;
  options.seed = 9;
  return options;
}

TEST(WorkloadTest, KeysAreWellFormed) {
  WorkloadGenerator generator(SmallOptions());
  std::set<RecordId> records;
  for (int i = 0; i < 500; ++i) {
    const RouteKey key = generator.NextKey(Micros(i));
    EXPECT_GE(key.tenant, 1);
    EXPECT_LE(key.tenant, 100);
    EXPECT_EQ(key.created_time, Micros(i));
    // Record ids are unique auto-increments.
    EXPECT_TRUE(records.insert(key.record).second);
  }
}

TEST(WorkloadTest, DeterministicBySeed) {
  WorkloadGenerator a(SmallOptions()), b(SmallOptions());
  for (int i = 0; i < 100; ++i) {
    const RouteKey ka = a.NextKey(0), kb = b.NextKey(0);
    EXPECT_EQ(ka.tenant, kb.tenant);
    EXPECT_EQ(ka.record, kb.record);
  }
}

TEST(WorkloadTest, TenantSkewFollowsZipf) {
  WorkloadGenerator generator(SmallOptions());
  std::map<TenantId, int> counts;
  for (int i = 0; i < 50000; ++i) counts[generator.NextKey(0).tenant]++;
  // Rank-1 tenant (id 1, no shift) dominates rank-50 heavily.
  EXPECT_GT(counts[1], 10 * counts[50]);
}

TEST(WorkloadTest, HotspotShiftRemapsHotTenant) {
  WorkloadGenerator generator(SmallOptions());
  EXPECT_EQ(generator.TenantForRank(0), 1);
  generator.ShiftHotspots(10);
  EXPECT_EQ(generator.TenantForRank(0), 11);
  generator.ShiftHotspots(95);  // wraps around
  EXPECT_EQ(generator.TenantForRank(0), 6);
}

TEST(WorkloadTest, SetThetaChangesConcentration) {
  WorkloadGenerator generator(SmallOptions());
  auto head_share = [&]() {
    std::map<TenantId, int> counts;
    for (int i = 0; i < 20000; ++i) counts[generator.NextKey(0).tenant]++;
    return double(counts[generator.TenantForRank(0)]) / 20000.0;
  };
  const double before = head_share();
  generator.SetTenantTheta(2.0);
  const double after = head_share();
  EXPECT_GT(after, 1.5 * before);
}

TEST(WorkloadTest, DocumentsCarryTheTemplate) {
  WorkloadGenerator generator(SmallOptions());
  const Document doc = generator.NextDocument(123456);
  for (const char* field :
       {"tenant_id", "record_id", "created_time", "status", "flag", "group",
        "amount", "quantity", "region", "channel", "title", "buyer_nick",
        "seller_nick", "attributes"}) {
    EXPECT_TRUE(doc.Has(field)) << field;
  }
  // Attributes parse back into sub-attributes from the configured
  // universe.
  const auto attrs = ParseAttributes(doc.Get("attributes").as_string());
  EXPECT_FALSE(attrs.empty());
  EXPECT_LE(attrs.size(), 5u);
  for (const auto& [key, value] : attrs) {
    EXPECT_EQ(key.rfind("attr", 0), 0u) << key;
  }
}

TEST(WorkloadTest, KeyOnlyModeSkipsBody) {
  WorkloadGenerator::Options options = SmallOptions();
  options.full_documents = false;
  WorkloadGenerator generator(options);
  const Document doc = generator.NextDocument(0);
  EXPECT_EQ(doc.size(), 3u);  // routing fields only
}

TEST(QueryGeneratorTest, ProducesParseableSql) {
  QueryGenerator::Options options;
  options.seed = 5;
  QueryGenerator generator(options);
  for (int i = 0; i < 300; ++i) {
    const std::string sql =
        generator.NextSql(TenantId(1 + i), Micros(i) * kMicrosPerSecond +
                                               365 * 86400 * kMicrosPerSecond);
    auto parsed = ParseSql(sql);
    ASSERT_TRUE(parsed.ok()) << sql << "\n" << parsed.status().ToString();
    EXPECT_EQ(parsed->limit, 100);
    ASSERT_NE(parsed->where, nullptr);
  }
}

TEST(QueryGeneratorTest, SubAttributeFilterAppended) {
  QueryGenerator::Options options;
  options.with_sub_attribute_filter = true;
  options.num_sub_attributes = 10;
  QueryGenerator generator(options);
  const std::string sql =
      generator.NextSql(1, 365 * 86400 * kMicrosPerSecond);
  EXPECT_NE(sql.find("attributes.attr"), std::string::npos) << sql;
  EXPECT_TRUE(ParseSql(sql).ok());
}

TEST(QueryGeneratorTest, SameSeedSameQueries) {
  QueryGenerator::Options options;
  options.seed = 77;
  QueryGenerator a(options), b(options);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(a.NextSql(3, kMicrosPerSecond), b.NextSql(3, kMicrosPerSecond));
  }
}

}  // namespace
}  // namespace esdb
