#include <gtest/gtest.h>

#include "storage/analyzer.h"
#include "storage/segment.h"

namespace esdb {
namespace {

Document MakeLog(int64_t tenant, int64_t record, int64_t time, int64_t status,
                 const std::string& title, const std::string& attrs = "") {
  Document doc;
  doc.Set(kFieldTenantId, Value(tenant));
  doc.Set(kFieldRecordId, Value(record));
  doc.Set(kFieldCreatedTime, Value(time));
  doc.Set("status", Value(status));
  doc.Set("title", Value(title));
  if (!attrs.empty()) doc.Set(kFieldAttributes, Value(attrs));
  return doc;
}

IndexSpec TestSpec() {
  IndexSpec spec;
  spec.text_fields = {"title"};
  spec.composite_indexes = {{"tenant_id", "created_time"}};
  spec.scan_fields = {"status"};
  spec.indexed_sub_attributes = {"activity"};
  return spec;
}

class SegmentTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = TestSpec();
    SegmentBuilder builder(&spec_);
    builder.Add(MakeLog(1, 100, 1000, 0, "classic novel",
                        "activity:promo;size:XL"));
    builder.Add(MakeLog(1, 101, 2000, 1, "cotton shirt", "activity:none"));
    builder.Add(MakeLog(2, 102, 1500, 0, "novel lamp", "size:S"));
    segment_ = std::move(builder).Build(7);
  }

  IndexSpec spec_;
  std::unique_ptr<Segment> segment_;
};

TEST_F(SegmentTest, BasicProperties) {
  EXPECT_EQ(segment_->id(), 7u);
  EXPECT_EQ(segment_->num_docs(), 3u);
  EXPECT_GT(segment_->SizeBytes(), 0u);
}

TEST_F(SegmentTest, KeywordPostings) {
  const PostingList& hits =
      segment_->Postings("tenant_id", Value(int64_t(1)).EncodeSortable());
  EXPECT_EQ(hits, PostingList(std::vector<DocId>{0, 1}));
  // status is a scan-list field but still indexed (access-path choice
  // happens in the optimizer).
  EXPECT_EQ(
      segment_->Postings("status", Value(int64_t(0)).EncodeSortable()).size(),
      2u);
}

TEST_F(SegmentTest, TextFieldIsTokenized) {
  EXPECT_EQ(segment_->Postings("title", "novel"),
            PostingList(std::vector<DocId>{0, 2}));
  // The exact full string is NOT a term on text fields.
  EXPECT_TRUE(segment_->Postings("title", "classic novel").empty());
}

TEST_F(SegmentTest, FrequencyBasedSubAttributeIndexing) {
  // "activity" is in the indexed set -> term exists.
  EXPECT_EQ(segment_
                ->Postings("attributes.activity",
                           Value(std::string("promo")).EncodeSortable())
                .size(),
            1u);
  // "size" is not indexed -> no postings (query falls back to scan).
  EXPECT_TRUE(segment_
                  ->Postings("attributes.size",
                             Value(std::string("XL")).EncodeSortable())
                  .empty());
  EXPECT_FALSE(segment_->HasInvertedIndex("attributes.size"));
}

TEST_F(SegmentTest, IndexAllSubAttributes) {
  IndexSpec spec = TestSpec();
  spec.index_all_sub_attributes = true;
  SegmentBuilder builder(&spec);
  builder.Add(MakeLog(1, 1, 1, 0, "t", "size:XL"));
  auto seg = std::move(builder).Build(1);
  EXPECT_EQ(seg->Postings("attributes.size",
                          Value(std::string("XL")).EncodeSortable())
                .size(),
            1u);
}

TEST_F(SegmentTest, CompositeIndexScan) {
  const SortedKeyIndex* index =
      segment_->CompositeIndex("tenant_id_created_time");
  ASSERT_NE(index, nullptr);
  const Value lo(int64_t(900)), hi(int64_t(1600));
  const KeyRange r = MakeKeyRange({Value(int64_t(1))}, &lo, true, &hi, true);
  EXPECT_EQ(index->ScanRange(r.lo, r.hi),
            PostingList(std::vector<DocId>{0}));
  EXPECT_EQ(segment_->CompositeIndex("missing"), nullptr);
}

TEST_F(SegmentTest, DocValuesAndStoredFields) {
  const DocValues::Column* status = segment_->doc_values().Find("status");
  ASSERT_NE(status, nullptr);
  EXPECT_EQ(status->Get(1).as_int(), 1);

  auto doc = segment_->GetDocument(2);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("title").as_string(), "novel lamp");
  EXPECT_FALSE(segment_->GetDocument(99).ok());
}

TEST_F(SegmentTest, TombstoneOverlayAndLiveDocs) {
  EXPECT_EQ(segment_->FindByRecordId(101), 1);
  EXPECT_EQ(segment_->FindByRecordId(999), -1);

  // The segment itself is immutable; deletes live in a copy-on-write
  // overlay carried by the view.
  SegmentView view{std::shared_ptr<const Segment>(std::move(segment_)),
                   nullptr, nullptr};
  EXPECT_EQ(view.num_deleted(), 0u);
  const auto base = view.tombstones;
  view.tombstones =
      Tombstones::WithDeleted(base.get(), uint32_t(view->num_docs()), 1);
  ASSERT_NE(view.tombstones, nullptr);
  EXPECT_TRUE(view.IsDeleted(1));
  EXPECT_EQ(view.num_deleted(), 1u);
  EXPECT_EQ(view.num_live_docs(), 2u);
  EXPECT_EQ(view.LiveDocs(), PostingList(std::vector<DocId>{0, 2}));

  // Marking the same doc again is idempotent (count stays 1).
  const auto again = Tombstones::WithDeleted(
      view.tombstones.get(), uint32_t(view->num_docs()), 1);
  EXPECT_EQ(again->count(), 1u);

  // FromBits maps the all-clear bitmap to the null overlay.
  EXPECT_EQ(Tombstones::FromBits(std::vector<bool>(3, false)), nullptr);
}

TEST_F(SegmentTest, EncodeDecodeRoundTrip) {
  const auto overlay =
      Tombstones::WithDeleted(nullptr, uint32_t(segment_->num_docs()), 0);
  const std::string bytes = segment_->Encode(overlay.get());
  std::shared_ptr<const Tombstones> decoded_overlay;
  auto decoded = Segment::Decode(bytes, &decoded_overlay);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const Segment& seg = **decoded;

  EXPECT_EQ(seg.id(), segment_->id());
  EXPECT_EQ(seg.num_docs(), segment_->num_docs());
  // The file's delete bitmap comes back as a decoded overlay.
  ASSERT_NE(decoded_overlay, nullptr);
  EXPECT_EQ(decoded_overlay->count(), 1u);
  EXPECT_TRUE(decoded_overlay->Test(0));
  EXPECT_FALSE(decoded_overlay->Test(1));
  // Indexes survive byte-for-byte.
  EXPECT_EQ(seg.Postings("title", "novel"),
            segment_->Postings("title", "novel"));
  ASSERT_NE(seg.CompositeIndex("tenant_id_created_time"), nullptr);
  EXPECT_EQ(seg.FindByRecordId(102), 2);
  auto doc = seg.GetDocument(2);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("title").as_string(), "novel lamp");

  // Without deletes the decoded overlay is null.
  std::shared_ptr<const Tombstones> none;
  auto clean = Segment::Decode(seg.Encode(), &none);
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(none, nullptr);
}

TEST_F(SegmentTest, DecodeRejectsTruncation) {
  const std::string bytes = segment_->Encode();
  for (size_t len : {size_t(0), bytes.size() / 4, bytes.size() - 1}) {
    EXPECT_FALSE(Segment::Decode(std::string_view(bytes).substr(0, len)).ok());
  }
  EXPECT_FALSE(Segment::Decode(bytes + "junk").ok());
}

TEST(AnalyzerTest, TokenizeLowercasesAndSplits) {
  const auto tokens = Tokenize("Hello, World-42!");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "42");
}

TEST(AnalyzerTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("!!! ---").empty());
}

TEST(AnalyzerTest, NormalizeTerm) {
  EXPECT_EQ(NormalizeTerm("HeLLo"), "hello");
}

}  // namespace
}  // namespace esdb
