// Negative-compilation input for cmake/ThreadSafetyCheck.cmake: reads
// and writes a GUARDED_BY field WITHOUT taking its mutex. This file
// MUST FAIL to compile under -Werror=thread-safety-analysis — if it
// compiles, the annotations in common/mutex.h are decorative.
#include "common/mutex.h"

namespace {

class Counter {
 public:
  int Increment() {
    return ++value_;  // deliberate bug: mu_ not held
  }

 private:
  esdb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return counter.Increment() == 1 ? 0 : 1;
}
