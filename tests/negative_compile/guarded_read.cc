// Positive control for cmake/ThreadSafetyCheck.cmake: a correctly
// locked GUARDED_BY access. This file MUST compile under
// -Werror=thread-safety-analysis; if it doesn't, the failure of its
// sibling unguarded_read.cc proves nothing.
#include "common/mutex.h"

namespace {

class Counter {
 public:
  int Increment() {
    esdb::MutexLock lock(&mu_);
    return ++value_;
  }

 private:
  esdb::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return counter.Increment() == 1 ? 0 : 1;
}
