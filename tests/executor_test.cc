#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "query/executor.h"
#include "query/normalize.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "storage/shard_store.h"

namespace esdb {
namespace {

IndexSpec TestSpec() {
  IndexSpec spec;
  spec.text_fields = {"title"};
  spec.composite_indexes = {{"tenant_id", "created_time"}};
  spec.scan_fields = {"status", "flag"};
  spec.indexed_sub_attributes = {"activity"};
  return spec;
}

// Builds a store with deterministic pseudo-random transaction logs.
std::unique_ptr<ShardStore> BuildStore(const IndexSpec* spec, int num_docs,
                                       uint64_t seed,
                                       int refresh_every = 37) {
  ShardStore::Options options;
  options.refresh_doc_count = 0;
  auto store = std::make_unique<ShardStore>(spec, options);
  Rng rng(seed);
  const char* titles[] = {"classic novel", "cotton shirt", "novel lamp",
                          "steel bottle", "gaming keyboard"};
  const char* activities[] = {"promo", "none", "festival"};
  for (int i = 0; i < num_docs; ++i) {
    WriteOp op;
    op.type = OpType::kInsert;
    op.doc.Set(kFieldTenantId, Value(int64_t(1 + rng.Uniform(5))));
    op.doc.Set(kFieldRecordId, Value(int64_t(i)));
    op.doc.Set(kFieldCreatedTime, Value(int64_t(rng.Uniform(1000))));
    op.doc.Set("status", Value(int64_t(rng.Uniform(4))));
    op.doc.Set("flag", Value(int64_t(rng.Uniform(2))));
    op.doc.Set("group", Value(int64_t(rng.Uniform(20))));
    op.doc.Set("amount", Value(double(rng.Uniform(1000)) / 10.0));
    op.doc.Set("title", Value(std::string(titles[rng.Uniform(5)])));
    op.doc.Set(kFieldAttributes,
               Value("activity:" + std::string(activities[rng.Uniform(3)]) +
                     ";size:" + std::to_string(rng.Uniform(5))));
    EXPECT_TRUE(store->Apply(op).ok());
    if (i % refresh_every == refresh_every - 1) store->Refresh();
  }
  store->Refresh();
  return store;
}

// Reference evaluator over stored documents.
bool EvalExprOnDoc(const Expr& e, const Document& doc) {
  switch (e.kind) {
    case Expr::Kind::kPred: {
      // Sub-attribute virtual columns.
      const size_t dot = e.pred.column.find('.');
      if (dot != std::string::npos &&
          e.pred.column.compare(0, dot, kFieldAttributes) == 0) {
        const Value& attrs = doc.Get(kFieldAttributes);
        if (!attrs.is_string()) return e.pred.Eval(Value::Null());
        auto parsed = ParseAttributes(attrs.as_string());
        auto it = parsed.find(e.pred.column.substr(dot + 1));
        return e.pred.Eval(it == parsed.end() ? Value::Null()
                                              : Value(it->second));
      }
      return e.pred.Eval(doc.Get(e.pred.column));
    }
    case Expr::Kind::kNot:
      return !EvalExprOnDoc(*e.children[0], doc);
    case Expr::Kind::kAnd:
      for (const auto& c : e.children) {
        if (!EvalExprOnDoc(*c, doc)) return false;
      }
      return true;
    case Expr::Kind::kOr:
      for (const auto& c : e.children) {
        if (EvalExprOnDoc(*c, doc)) return true;
      }
      return false;
  }
  return false;
}

std::vector<int64_t> BruteForce(const ShardStore& store, const Expr* where) {
  std::vector<int64_t> out;
  const SegmentSnapshot snapshot = store.Snapshot();
  for (const SegmentView& seg : *snapshot) {
    const PostingList live = seg.LiveDocs();
    for (DocId id : live.ids()) {
      auto doc = seg->GetDocument(id);
      EXPECT_TRUE(doc.ok());
      if (where == nullptr || EvalExprOnDoc(*where, *doc)) {
        out.push_back(doc->record_id());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int64_t> RunPlan(const ShardStore& store, const Query& query,
                             const IndexSpec& spec,
                             const PlannerOptions& planner) {
  std::unique_ptr<Expr> normalized;
  if (query.where != nullptr) {
    normalized = NormalizeForPlanning(query.where->Clone());
  }
  auto plan = PlanWhere(normalized.get(), spec, planner);
  ExecStats stats;
  auto result = ExecuteOnShard(query, *plan, *store.Snapshot(), &stats);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  std::vector<int64_t> out;
  for (const Document& doc : result->rows) out.push_back(doc.record_id());
  std::sort(out.begin(), out.end());
  return out;
}

Query ParseQuery(std::string_view sql) {
  auto q = ParseSql(sql);
  EXPECT_TRUE(q.ok()) << sql << ": " << q.status().ToString();
  return std::move(q).value();
}

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = TestSpec();
    store_ = BuildStore(&spec_, 500, 77);
  }

  void ExpectMatchesBruteForce(const std::string& sql) {
    const Query query = ParseQuery(sql);
    const auto expected = BruteForce(*store_, query.where.get());
    // RBO plan and Lucene-baseline plan must both agree with brute
    // force.
    PlannerOptions rbo;
    EXPECT_EQ(RunPlan(*store_, query, spec_, rbo), expected) << sql;
    PlannerOptions baseline;
    baseline.use_composite_index = false;
    baseline.use_scan_list = false;
    EXPECT_EQ(RunPlan(*store_, query, spec_, baseline), expected) << sql;
  }

  IndexSpec spec_;
  std::unique_ptr<ShardStore> store_;
};

TEST_F(ExecutorTest, PaperStyleQuery) {
  ExpectMatchesBruteForce(
      "SELECT * FROM t WHERE tenant_id = 1 AND created_time BETWEEN 100 AND "
      "600 AND status = 1 OR group = 7");
}

TEST_F(ExecutorTest, CompositePlusFilters) {
  ExpectMatchesBruteForce(
      "SELECT * FROM t WHERE tenant_id = 2 AND created_time >= 500 AND "
      "status = 0 AND flag = 1");
}

TEST_F(ExecutorTest, SingleColumnPredicates) {
  ExpectMatchesBruteForce("SELECT * FROM t WHERE group = 3");
  ExpectMatchesBruteForce("SELECT * FROM t WHERE amount >= 50.0");
  ExpectMatchesBruteForce("SELECT * FROM t WHERE record_id IN (1, 5, 9)");
}

TEST_F(ExecutorTest, FullTextMatch) {
  ExpectMatchesBruteForce(
      "SELECT * FROM t WHERE tenant_id = 3 AND MATCH(title, 'novel')");
  ExpectMatchesBruteForce("SELECT * FROM t WHERE MATCH(title, 'cotton shirt')");
}

TEST_F(ExecutorTest, LikePostFilter) {
  ExpectMatchesBruteForce(
      "SELECT * FROM t WHERE tenant_id = 1 AND title LIKE '%novel%'");
}

TEST_F(ExecutorTest, SubAttributePredicates) {
  // Indexed sub-attribute.
  ExpectMatchesBruteForce(
      "SELECT * FROM t WHERE tenant_id = 1 AND attributes.activity = "
      "'promo'");
  // Non-indexed sub-attribute: scan fallback.
  ExpectMatchesBruteForce(
      "SELECT * FROM t WHERE tenant_id = 1 AND attributes.size = '3'");
}

TEST_F(ExecutorTest, NegationsAndNulls) {
  ExpectMatchesBruteForce("SELECT * FROM t WHERE status != 2");
  ExpectMatchesBruteForce(
      "SELECT * FROM t WHERE tenant_id = 1 AND NOT (status = 1 OR flag = 0)");
  ExpectMatchesBruteForce("SELECT * FROM t WHERE missing_col IS NULL");
  ExpectMatchesBruteForce("SELECT * FROM t WHERE status IS NOT NULL");
  ExpectMatchesBruteForce("SELECT * FROM t WHERE tenant_id NOT IN (1, 2)");
}

TEST_F(ExecutorTest, ConstantFalse) {
  ExpectMatchesBruteForce(
      "SELECT * FROM t WHERE created_time > 900 AND created_time < 100");
}

TEST_F(ExecutorTest, NoWhereClause) {
  ExpectMatchesBruteForce("SELECT * FROM t WHERE record_id >= 0");
  const Query q = ParseQuery("SELECT * FROM t");
  const auto expected = BruteForce(*store_, nullptr);
  EXPECT_EQ(RunPlan(*store_, q, spec_, PlannerOptions{}), expected);
}

// Property: random queries agree with brute force under both planner
// configurations (the paper's optimizer must change cost, not
// results).
TEST_F(ExecutorTest, RandomQueriesMatchBruteForce) {
  Rng rng(55);
  for (int trial = 0; trial < 60; ++trial) {
    std::string sql = "SELECT * FROM t WHERE tenant_id = " +
                      std::to_string(1 + rng.Uniform(5));
    if (rng.Bernoulli(0.8)) {
      const int64_t lo = int64_t(rng.Uniform(900));
      sql += " AND created_time BETWEEN " + std::to_string(lo) + " AND " +
             std::to_string(lo + int64_t(rng.Uniform(300)));
    }
    if (rng.Bernoulli(0.6)) {
      sql += " AND status = " + std::to_string(rng.Uniform(4));
    }
    if (rng.Bernoulli(0.4)) {
      sql += " AND group IN (" + std::to_string(rng.Uniform(20)) + ", " +
             std::to_string(rng.Uniform(20)) + ")";
    }
    if (rng.Bernoulli(0.3)) {
      sql += " AND (flag = 0 OR amount >= " +
             std::to_string(rng.Uniform(90)) + ")";
    }
    if (rng.Bernoulli(0.3)) sql += " AND MATCH(title, 'novel')";
    ExpectMatchesBruteForce(sql);
  }
}

TEST_F(ExecutorTest, OrderByAndLimit) {
  const Query q = ParseQuery(
      "SELECT * FROM t WHERE tenant_id = 1 ORDER BY created_time DESC "
      "LIMIT 10");
  auto plan =
      PlanWhere(q.where.get(), spec_, PlannerOptions{});
  ExecStats stats;
  auto result = ExecuteOnShard(q, *plan, *store_->Snapshot(), &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_LE(result->rows.size(), 10u);
  for (size_t i = 1; i < result->rows.size(); ++i) {
    EXPECT_GE(result->rows[i - 1].created_time(),
              result->rows[i].created_time());
  }
}

TEST_F(ExecutorTest, EarlyStopWithoutOrderBy) {
  const Query q = ParseQuery("SELECT * FROM t WHERE tenant_id = 1 LIMIT 3");
  auto plan = PlanWhere(q.where.get(), spec_, PlannerOptions{});
  ExecStats stats;
  auto result = ExecuteOnShard(q, *plan, *store_->Snapshot(), &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 3u);
}

TEST_F(ExecutorTest, Projection) {
  const Query q =
      ParseQuery("SELECT record_id, status FROM t WHERE tenant_id = 1");
  auto plan = PlanWhere(q.where.get(), spec_, PlannerOptions{});
  ExecStats stats;
  auto shard = ExecuteOnShard(q, *plan, *store_->Snapshot(), &stats);
  ASSERT_TRUE(shard.ok());
  std::vector<QueryResult> results;
  results.push_back(std::move(shard).value());
  const QueryResult merged = AggregateResults(q, std::move(results));
  ASSERT_FALSE(merged.rows.empty());
  EXPECT_EQ(merged.rows[0].size(), 2u);
  EXPECT_TRUE(merged.rows[0].Has("record_id"));
}

TEST_F(ExecutorTest, Aggregates) {
  const Query count_q = ParseQuery("SELECT COUNT(*) FROM t WHERE flag = 1");
  auto plan = PlanWhere(count_q.where.get(), spec_, PlannerOptions{});
  ExecStats stats;
  auto result = ExecuteOnShard(count_q, *plan, *store_->Snapshot(), &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->agg_count,
            BruteForce(*store_, count_q.where.get()).size());

  const Query sum_q = ParseQuery("SELECT SUM(amount) FROM t");
  auto plan2 = PlanWhere(nullptr, spec_, PlannerOptions{});
  auto sum_result = ExecuteOnShard(sum_q, *plan2, *store_->Snapshot(), &stats);
  ASSERT_TRUE(sum_result.ok());
  double expected = 0;
  const SegmentSnapshot snapshot = store_->Snapshot();
  for (const SegmentView& seg : *snapshot) {
    const PostingList live = seg.LiveDocs();
    for (DocId id : live.ids()) {
      expected += seg->GetDocument(id)->Get("amount").NumericValue();
    }
  }
  EXPECT_NEAR(sum_result->agg_sum, expected, 1e-6);
}

TEST_F(ExecutorTest, AggregateResultsMergesAcrossShards) {
  Query q = ParseQuery("SELECT COUNT(*) FROM t");
  QueryResult a, b;
  a.agg_count = 3;
  a.agg_sum = 1.5;
  a.agg_min = Value(int64_t(1));
  b.agg_count = 2;
  b.agg_sum = 2.5;
  b.agg_min = Value(int64_t(-4));
  std::vector<QueryResult> parts;
  parts.push_back(std::move(a));
  parts.push_back(std::move(b));
  const QueryResult merged = AggregateResults(q, std::move(parts));
  EXPECT_EQ(merged.agg_count, 5u);
  EXPECT_DOUBLE_EQ(merged.agg_sum, 4.0);
  EXPECT_EQ(merged.agg_min->as_int(), -4);
}

TEST_F(ExecutorTest, DeletedDocsExcluded) {
  WriteOp del;
  del.type = OpType::kDelete;
  del.doc.Set(kFieldTenantId, Value(int64_t(1)));
  del.doc.Set(kFieldRecordId, Value(int64_t(0)));
  del.doc.Set(kFieldCreatedTime, Value(int64_t(0)));
  ASSERT_TRUE(store_->Apply(del).ok());
  // Tombstone applies without refresh (delete hits the segment map).
  ExpectMatchesBruteForce("SELECT * FROM t WHERE record_id = 0");
}

// Plan-shape assertions: the RBO picks the access paths Section 5.1
// describes.
TEST(OptimizerShapeTest, CompositeLongestMatch) {
  IndexSpec spec = TestSpec();
  auto q = ParseQuery(
      "SELECT * FROM t WHERE tenant_id = 1 AND created_time BETWEEN 1 AND 2 "
      "AND group = 5");
  auto normalized = NormalizeForPlanning(q.where->Clone());
  auto plan = PlanWhere(normalized.get(), spec, PlannerOptions{});
  const std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("CompositeIndexScan tenant_id_created_time"),
            std::string::npos)
      << rendered;
  // group has no composite/scan entry: single-column index search.
  EXPECT_NE(rendered.find("IndexSearch group"), std::string::npos)
      << rendered;
}

TEST(OptimizerShapeTest, ScanListBecomesDocValueFilter) {
  IndexSpec spec = TestSpec();
  auto q = ParseQuery(
      "SELECT * FROM t WHERE tenant_id = 1 AND status = 1");
  auto plan = PlanWhere(q.where.get(), spec, PlannerOptions{});
  const std::string rendered = plan->ToString();
  EXPECT_NE(rendered.find("DocValueScan [status = 1]"), std::string::npos)
      << rendered;
}

TEST(OptimizerShapeTest, ScanFieldAloneUsesItsIndex) {
  IndexSpec spec = TestSpec();
  auto q = ParseQuery("SELECT * FROM t WHERE status = 1");
  auto plan = PlanWhere(q.where.get(), spec, PlannerOptions{});
  EXPECT_EQ(plan->kind, PlanNode::Kind::kTermLookup);
}

TEST(OptimizerShapeTest, BaselineUsesSingleColumnIndexes) {
  IndexSpec spec = TestSpec();
  PlannerOptions baseline;
  baseline.use_composite_index = false;
  baseline.use_scan_list = false;
  auto q = ParseQuery(
      "SELECT * FROM t WHERE tenant_id = 1 AND created_time BETWEEN 1 AND 9 "
      "AND status = 1");
  auto plan = PlanWhere(q.where.get(), spec, baseline);
  const std::string rendered = plan->ToString();
  EXPECT_EQ(rendered.find("CompositeIndexScan"), std::string::npos);
  EXPECT_NE(rendered.find("IndexRangeSearch created_time"),
            std::string::npos)
      << rendered;
}

TEST(OptimizerShapeTest, OrBecomesUnion) {
  IndexSpec spec = TestSpec();
  auto q = ParseQuery("SELECT * FROM t WHERE group = 1 OR group = 2");
  // Without normalization the OR survives; with merge it becomes IN.
  auto plan = PlanWhere(q.where.get(), spec, PlannerOptions{});
  EXPECT_TRUE(plan->kind == PlanNode::Kind::kUnion ||
              plan->kind == PlanNode::Kind::kTermLookup);
}

TEST(OptimizerShapeTest, ConstantFalseIsEmptyPlan) {
  IndexSpec spec = TestSpec();
  auto q = ParseQuery("SELECT * FROM t WHERE a > 5 AND a < 2");
  auto normalized = NormalizeForPlanning(q.where->Clone());
  auto plan = PlanWhere(normalized.get(), spec, PlannerOptions{});
  EXPECT_EQ(plan->kind, PlanNode::Kind::kEmpty);
}

// The optimizer's purpose: fewer postings touched on multi-column
// queries (Figure 17's mechanism).
TEST_F(ExecutorTest, OptimizerReducesPostingsConsidered) {
  const Query q = ParseQuery(
      "SELECT * FROM t WHERE tenant_id = 1 AND created_time BETWEEN 0 AND "
      "999 AND status = 1 AND flag = 0");
  auto normalized = NormalizeForPlanning(q.where->Clone());

  auto rbo_plan = PlanWhere(normalized.get(), spec_, PlannerOptions{});
  ExecStats rbo_stats;
  ASSERT_TRUE(
      ExecuteOnShard(q, *rbo_plan, *store_->Snapshot(), &rbo_stats).ok());

  PlannerOptions baseline;
  baseline.use_composite_index = false;
  baseline.use_scan_list = false;
  auto base_plan = PlanWhere(normalized.get(), spec_, baseline);
  ExecStats base_stats;
  ASSERT_TRUE(
      ExecuteOnShard(q, *base_plan, *store_->Snapshot(), &base_stats).ok());

  EXPECT_LT(rbo_stats.postings_considered, base_stats.postings_considered);
}

}  // namespace
}  // namespace esdb
