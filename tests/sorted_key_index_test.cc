#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"
#include "common/clock.h"
#include "storage/sorted_key_index.h"

namespace esdb {
namespace {

Value RandomKeyValue(Rng& rng) {
  switch (rng.Uniform(3)) {
    case 0:
      return Value(int64_t(rng.Next() % 41) - 20);
    case 1:
      return Value(double(int64_t(rng.Next() % 41) - 20) / 4.0);
    default: {
      // Include strings with embedded NULs to exercise escaping.
      std::string s;
      const size_t len = rng.Uniform(4);
      for (size_t i = 0; i < len; ++i) {
        s.push_back(char(rng.Uniform(3)));  // bytes 0x00-0x02
      }
      return Value(std::move(s));
    }
  }
}

int CompareTuples(const std::vector<Value>& a, const std::vector<Value>& b) {
  for (size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    const int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return int(a.size()) - int(b.size());
}

// Property: byte order of EncodeKey equals column-wise tuple order,
// including tuples of different lengths (prefix relationships).
TEST(KeyEncodingProperty, ByteOrderEqualsTupleOrder) {
  Rng rng(5);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<Value> a, b;
    const size_t na = 1 + rng.Uniform(3), nb = 1 + rng.Uniform(3);
    for (size_t i = 0; i < na; ++i) a.push_back(RandomKeyValue(rng));
    for (size_t i = 0; i < nb; ++i) b.push_back(RandomKeyValue(rng));
    const int tuple_cmp = CompareTuples(a, b);
    const int byte_cmp = EncodeKey(a).compare(EncodeKey(b));
    if (tuple_cmp < 0) {
      EXPECT_LT(byte_cmp, 0);
    } else if (tuple_cmp > 0) {
      EXPECT_GT(byte_cmp, 0);
    } else {
      EXPECT_EQ(byte_cmp, 0);
    }
  }
}

TEST(SortedKeyIndexTest, PrefixScan) {
  SortedKeyIndex index({"tenant_id", "created_time"});
  for (int64_t tenant = 1; tenant <= 3; ++tenant) {
    for (int64_t time = 0; time < 5; ++time) {
      index.Add(EncodeKey({Value(tenant), Value(time)}),
                DocId(tenant * 10 + time));
    }
  }
  index.Seal();
  const PostingList hits = index.ScanPrefix(EncodeKey({Value(int64_t(2))}));
  ASSERT_EQ(hits.size(), 5u);
  for (DocId id : hits.ids()) {
    EXPECT_GE(id, 20u);
    EXPECT_LT(id, 25u);
  }
}

TEST(SortedKeyIndexTest, EqualityPlusRangeBounds) {
  SortedKeyIndex index({"tenant_id", "created_time"});
  for (int64_t time = 0; time < 10; ++time) {
    index.Add(EncodeKey({Value(int64_t(1)), Value(time)}), DocId(time));
  }
  index.Seal();

  const Value lo(int64_t(3)), hi(int64_t(6));
  // [3, 6] inclusive.
  KeyRange r = MakeKeyRange({Value(int64_t(1))}, &lo, true, &hi, true);
  EXPECT_EQ(index.ScanRange(r.lo, r.hi),
            PostingList(std::vector<DocId>{3, 4, 5, 6}));
  // (3, 6) exclusive.
  r = MakeKeyRange({Value(int64_t(1))}, &lo, false, &hi, false);
  EXPECT_EQ(index.ScanRange(r.lo, r.hi),
            PostingList(std::vector<DocId>{4, 5}));
  // Unbounded below, <= 2.
  const Value two(int64_t(2));
  r = MakeKeyRange({Value(int64_t(1))}, nullptr, true, &two, true);
  EXPECT_EQ(index.ScanRange(r.lo, r.hi),
            PostingList(std::vector<DocId>{0, 1, 2}));
  // >= 8, unbounded above.
  const Value eight(int64_t(8));
  r = MakeKeyRange({Value(int64_t(1))}, &eight, true, nullptr, true);
  EXPECT_EQ(index.ScanRange(r.lo, r.hi),
            PostingList(std::vector<DocId>{8, 9}));
}

TEST(SortedKeyIndexTest, RangeDoesNotLeakAcrossEqualityPrefix) {
  SortedKeyIndex index({"tenant_id", "created_time"});
  index.Add(EncodeKey({Value(int64_t(1)), Value(int64_t(100))}), 1);
  index.Add(EncodeKey({Value(int64_t(2)), Value(int64_t(1))}), 2);
  index.Seal();
  // Unbounded range under tenant 1 must not see tenant 2's rows.
  KeyRange r = MakeKeyRange({Value(int64_t(1))}, nullptr, true, nullptr, true);
  EXPECT_EQ(index.ScanRange(r.lo, r.hi), PostingList(std::vector<DocId>{1}));
}

// Property: scans agree with brute force over random data.
TEST(SortedKeyIndexProperty, ScanMatchesBruteForce) {
  Rng rng(17);
  for (int trial = 0; trial < 100; ++trial) {
    SortedKeyIndex index({"a", "b"});
    std::vector<std::pair<std::vector<Value>, DocId>> rows;
    const size_t n = 1 + rng.Uniform(60);
    for (size_t i = 0; i < n; ++i) {
      std::vector<Value> tuple = {RandomKeyValue(rng), RandomKeyValue(rng)};
      index.Add(EncodeKey(tuple), DocId(i));
      rows.push_back({std::move(tuple), DocId(i)});
    }
    index.Seal();

    const Value eq = RandomKeyValue(rng);
    const Value lo = RandomKeyValue(rng);
    const Value hi = RandomKeyValue(rng);
    const KeyRange r = MakeKeyRange({eq}, &lo, true, &hi, false);

    std::vector<DocId> expected;
    for (const auto& [tuple, id] : rows) {
      if (tuple[0].Compare(eq) == 0 && tuple[1].Compare(lo) >= 0 &&
          tuple[1].Compare(hi) < 0) {
        expected.push_back(id);
      }
    }
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(index.ScanRange(r.lo, r.hi).ids(), expected);
  }
}

TEST(SortedKeyIndexTest, SerializationRoundTrip) {
  Rng rng(23);
  SortedKeyIndex index({"x", "y"});
  for (size_t i = 0; i < 200; ++i) {
    index.Add(EncodeKey({RandomKeyValue(rng), RandomKeyValue(rng)}),
              DocId(i));
  }
  index.Seal();

  std::string buf;
  index.EncodeTo(&buf);
  size_t pos = 0;
  SortedKeyIndex decoded({});
  ASSERT_TRUE(SortedKeyIndex::DecodeFrom(buf, &pos, &decoded).ok());
  EXPECT_EQ(pos, buf.size());
  EXPECT_EQ(decoded.columns(), index.columns());
  EXPECT_EQ(decoded.num_entries(), index.num_entries());

  // Same scans on both.
  const KeyRange r =
      MakeKeyRange({Value(int64_t(0))}, nullptr, true, nullptr, true);
  EXPECT_EQ(decoded.ScanRange(r.lo, r.hi), index.ScanRange(r.lo, r.hi));
}

TEST(SortedKeyIndexTest, PrefixCompressionShrinksFootprint) {
  // Keys share a long common prefix (same tenant): the compressed
  // footprint must be well below the raw key bytes.
  SortedKeyIndex index({"tenant_id", "created_time"});
  size_t raw_bytes = 0;
  for (int64_t time = 0; time < 1000; ++time) {
    std::string key =
        EncodeKey({Value(int64_t(7)), Value(time * kMicrosPerSecond)});
    raw_bytes += key.size();
    index.Add(std::move(key), DocId(time));
  }
  index.Seal();
  // The shared tenant prefix (and shared timestamp high bytes) must
  // buy a substantial reduction over storing full keys.
  EXPECT_LT(index.ApproximateBytes(), raw_bytes * 3 / 4);
}

TEST(SortedKeyIndexTest, DecodeRejectsCorruption) {
  SortedKeyIndex index({"a"});
  index.Add(EncodeKey({Value(int64_t(1))}), 0);
  index.Seal();
  std::string buf;
  index.EncodeTo(&buf);
  size_t pos = 0;
  SortedKeyIndex out({});
  EXPECT_FALSE(
      SortedKeyIndex::DecodeFrom(buf.substr(0, buf.size() - 1), &pos, &out)
          .ok());
}

}  // namespace
}  // namespace esdb
