#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "routing/router.h"

namespace esdb {
namespace {

TEST(RuleListTest, EmptyDefaultsToOne) {
  RuleList rules;
  EXPECT_EQ(rules.MatchWrite(42, 1000), 1u);
  EXPECT_EQ(rules.MaxOffset(42), 1u);
  EXPECT_EQ(rules.size(), 0u);
}

TEST(RuleListTest, UpdateGroupsByTimeAndOffset) {
  RuleList rules;
  rules.Update(100, 4, 1);
  rules.Update(100, 4, 2);  // same (t, s): appended to k_list
  rules.Update(200, 8, 1);
  EXPECT_EQ(rules.size(), 2u);
  const auto all = rules.Rules();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].tenants, (std::vector<TenantId>{1, 2}));
}

TEST(RuleListTest, DuplicateUpdateIsNoop) {
  RuleList rules;
  rules.Update(100, 4, 1);
  rules.Update(100, 4, 1);
  EXPECT_EQ(rules.Rules()[0].tenants.size(), 1u);
}

TEST(RuleListTest, MatchWriteHonorsEffectiveTime) {
  RuleList rules;
  rules.Update(100, 4, 1);
  rules.Update(200, 8, 1);
  // Record created before any rule: default s = 1 (its historical
  // placement).
  EXPECT_EQ(rules.MatchWrite(1, 50), 1u);
  // Between the rules: the t=100 rule applies.
  EXPECT_EQ(rules.MatchWrite(1, 150), 4u);
  // After both: largest s among applicable rules.
  EXPECT_EQ(rules.MatchWrite(1, 250), 8u);
  // Exactly at the boundary: rule with t <= tc applies.
  EXPECT_EQ(rules.MatchWrite(1, 100), 4u);
  // Other tenants unaffected.
  EXPECT_EQ(rules.MatchWrite(2, 250), 1u);
}

TEST(RuleListTest, MaxOffsetIgnoresEffectiveTime) {
  RuleList rules;
  rules.Update(100, 16, 7);
  // Reads must cover in-flight writes under a future-effective rule.
  EXPECT_EQ(rules.MaxOffset(7), 16u);
}

TEST(RuleListTest, EncodeDecodeRoundTrip) {
  RuleList rules;
  rules.Update(100, 4, 1);
  rules.Update(100, 4, 2);
  rules.Update(250, 32, 9);
  auto decoded = RuleList::Decode(rules.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rules);
  EXPECT_FALSE(RuleList::Decode("garbage").ok());
}

TEST(HashRoutingTest, StableAndInRange) {
  HashRouting routing(512);
  const RouteKey key{42, 1001, 0};
  const ShardId shard = routing.RouteWrite(key);
  EXPECT_LT(shard, 512u);
  EXPECT_EQ(routing.RouteWrite(key), shard);  // deterministic
  // All records of a tenant land on one shard.
  for (int64_t record = 0; record < 100; ++record) {
    EXPECT_EQ(routing.RouteWrite({42, record, 0}), shard);
  }
  EXPECT_EQ(routing.RouteRead(42), std::vector<ShardId>{shard});
}

TEST(DoubleHashRoutingTest, SpreadsOverExactlySConsecutiveShards) {
  const uint32_t kN = 64, kS = 8;
  DoubleHashRouting routing(kN, kS);
  std::set<ShardId> used;
  for (int64_t record = 0; record < 2000; ++record) {
    used.insert(routing.RouteWrite({7, record, 0}));
  }
  EXPECT_EQ(used.size(), kS);
  // The used shards are consecutive mod N starting at h1 mod N.
  const ShardId base = ShardId(RouteHash1(7) % kN);
  for (uint32_t i = 0; i < kS; ++i) {
    EXPECT_TRUE(used.count((base + i) % kN)) << i;
  }
  // Reads name the same set.
  const auto read = routing.RouteRead(7);
  EXPECT_EQ(std::set<ShardId>(read.begin(), read.end()), used);
}

TEST(DoubleHashRoutingTest, OffsetClamping) {
  DoubleHashRouting routing(16, 999);
  EXPECT_EQ(routing.RouteRead(1).size(), 16u);
  DoubleHashRouting degenerate(16, 0);  // s=0 coerced to 1 (= hashing)
  EXPECT_EQ(degenerate.RouteRead(1).size(), 1u);
}

TEST(DynamicRoutingTest, DefaultsToSingleShard) {
  DynamicSecondaryHashing routing(64);
  std::set<ShardId> used;
  for (int64_t record = 0; record < 100; ++record) {
    used.insert(routing.RouteWrite({5, record, 1000}));
  }
  EXPECT_EQ(used.size(), 1u);
}

TEST(DynamicRoutingTest, RuleExtendsShardRun) {
  DynamicSecondaryHashing routing(64);
  routing.mutable_rules()->Update(1000, 8, 5);
  // Writes created before the effective time keep the old placement.
  std::set<ShardId> before;
  for (int64_t record = 0; record < 200; ++record) {
    before.insert(routing.RouteWrite({5, record, 999}));
  }
  EXPECT_EQ(before.size(), 1u);
  // Writes at/after the effective time spread over 8 shards.
  std::set<ShardId> after;
  for (int64_t record = 0; record < 2000; ++record) {
    after.insert(routing.RouteWrite({5, record, 1000}));
  }
  EXPECT_EQ(after.size(), 8u);
  // The old shard is the first of the run (consecutive extension).
  EXPECT_TRUE(after.count(*before.begin()));
}

// The paper's central consistency invariant (Section 4.2): for ANY
// history of committed rules, every write's destination shard is
// inside the read fan-out of its tenant.
TEST(DynamicRoutingProperty, ReadsCoverAllWrites) {
  Rng rng(71);
  for (int trial = 0; trial < 50; ++trial) {
    DynamicSecondaryHashing routing(64);
    std::vector<std::pair<RouteKey, ShardId>> placements;
    Micros now = 0;
    for (int step = 0; step < 200; ++step) {
      now += Micros(rng.Uniform(100));
      if (rng.Bernoulli(0.05)) {
        // Commit a rule for a random tenant with a power-of-two s.
        const TenantId tenant = TenantId(1 + rng.Uniform(5));
        const uint32_t s = 1u << (1 + rng.Uniform(5));  // 2..32
        routing.mutable_rules()->Update(now + Micros(rng.Uniform(50)), s,
                                        tenant);
      }
      const RouteKey key{TenantId(1 + rng.Uniform(5)),
                         RecordId(step + trial * 1000), now};
      placements.push_back({key, routing.RouteWrite(key)});
    }
    // Every historical write is covered by the current read fan-out.
    for (const auto& [key, shard] : placements) {
      const std::vector<ShardId> read_set = routing.RouteRead(key.tenant);
      EXPECT_NE(std::find(read_set.begin(), read_set.end(), shard),
                read_set.end())
          << "tenant " << key.tenant << " record " << key.record;
      // And the write re-routes to the same shard today (deletes and
      // updates find the original copy).
      EXPECT_EQ(routing.RouteWrite(key), shard);
    }
  }
}

TEST(DynamicRoutingTest, ReadFanoutClampedToNumShards) {
  DynamicSecondaryHashing routing(8);
  routing.mutable_rules()->Update(0, 64, 3);
  EXPECT_EQ(routing.RouteRead(3).size(), 8u);
}

TEST(RoutingTest, EquationOneMatchesEquationTwoWithStaticRules) {
  // With a rule fixing s for a tenant from time 0, dynamic routing
  // reproduces double hashing for that tenant.
  const uint32_t kN = 64, kS = 8;
  DoubleHashRouting dh(kN, kS);
  DynamicSecondaryHashing dyn(kN);
  dyn.mutable_rules()->Update(0, kS, 11);
  for (int64_t record = 0; record < 500; ++record) {
    const RouteKey key{11, record, 100};
    EXPECT_EQ(dh.RouteWrite(key), dyn.RouteWrite(key));
  }
}


TEST(RuleListCompactTest, DropsDominatedEntries) {
  RuleList rules;
  rules.Update(100, 8, 1);
  rules.Update(200, 4, 1);   // dominated: later AND smaller
  rules.Update(200, 16, 1);  // kept: larger
  rules.Update(100, 8, 2);   // other tenant untouched
  const size_t dropped = rules.Compact();
  EXPECT_EQ(dropped, 1u);
  EXPECT_EQ(rules.MaxOffset(1), 16u);
  EXPECT_EQ(rules.MatchWrite(1, 150), 8u);
  EXPECT_EQ(rules.MatchWrite(2, 150), 8u);
  EXPECT_FALSE(rules.Contains(200, 4, 1));
}

TEST(RuleListCompactTest, EmptyRuleRemovedEntirely) {
  RuleList rules;
  rules.Update(100, 8, 1);
  rules.Update(200, 8, 1);  // dominated (same offset, later time)
  EXPECT_EQ(rules.Compact(), 1u);
  EXPECT_EQ(rules.size(), 1u);
}

// Property: compaction never changes matching, for random histories.
TEST(RuleListCompactProperty, MatchingUnchanged) {
  Rng rng(909);
  for (int trial = 0; trial < 100; ++trial) {
    RuleList rules;
    for (int i = 0; i < 40; ++i) {
      rules.Update(Micros(rng.Uniform(1000)), 1u << rng.Uniform(7),
                   TenantId(1 + rng.Uniform(5)));
    }
    RuleList compacted = rules;
    const size_t before = compacted.TotalEntries();
    const size_t dropped = compacted.Compact();
    EXPECT_EQ(compacted.TotalEntries(), before - dropped);
    for (TenantId tenant = 1; tenant <= 5; ++tenant) {
      EXPECT_EQ(compacted.MaxOffset(tenant), rules.MaxOffset(tenant));
      for (Micros tc = 0; tc < 1100; tc += 37) {
        ASSERT_EQ(compacted.MatchWrite(tenant, tc),
                  rules.MatchWrite(tenant, tc))
            << "tenant " << tenant << " tc " << tc;
      }
    }
  }
}

}  // namespace
}  // namespace esdb
