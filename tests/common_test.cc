#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/clock.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/varint.h"
#include "common/zipf.h"

namespace esdb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such record");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: no such record");
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = [] { return Status::Internal("boom"); };
  auto wrapper = [&]() -> Status {
    ESDB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 5);
}

TEST(HashTest, Deterministic) {
  EXPECT_EQ(HashString("hello"), HashString("hello"));
  EXPECT_NE(HashString("hello"), HashString("hellp"));
}

TEST(HashTest, SeedsAreIndependent) {
  // Two seeds give uncorrelated functions; at minimum, different
  // values for many inputs.
  int same = 0;
  for (uint64_t i = 0; i < 1000; ++i) {
    if (HashUint64(i, 1) % 64 == HashUint64(i, 2) % 64) ++same;
  }
  // Expect ~1000/64 collisions; far below 100.
  EXPECT_LT(same, 100);
}

TEST(HashTest, HandlesAllTailLengths) {
  std::string data(40, 'x');
  std::set<uint64_t> seen;
  for (size_t len = 0; len <= 33; ++len) {
    seen.insert(Murmur3_64(data.data(), len, 0));
  }
  EXPECT_EQ(seen.size(), 34u);  // all distinct
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
}

TEST(RngTest, UniformBounds) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(ZipfTest, PmfSumsToOne) {
  ZipfGenerator zipf(1000, 1.0);
  double sum = 0;
  for (uint64_t k = 0; k < 1000; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfGenerator zipf(100, 0.0);
  for (uint64_t k = 0; k < 100; ++k) {
    EXPECT_NEAR(zipf.Pmf(k), 0.01, 1e-9);
  }
}

TEST(ZipfTest, PmfMonotonicallyDecreasing) {
  ZipfGenerator zipf(500, 1.5);
  for (uint64_t k = 1; k < 500; ++k) {
    EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1) + 1e-12);
  }
}

TEST(ZipfTest, SampleFrequenciesMatchPmf) {
  ZipfGenerator zipf(50, 1.0);
  Rng rng(7);
  std::vector<uint64_t> counts(50, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) counts[zipf.Sample(rng)]++;
  for (uint64_t k = 0; k < 10; ++k) {  // head ranks have tight bounds
    const double expected = zipf.Pmf(k) * n;
    EXPECT_NEAR(double(counts[k]), expected, 5 * std::sqrt(expected) + 5);
  }
}

// Property sweep: alias sampling stays in range for assorted shapes.
class ZipfParamTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(ZipfParamTest, SamplesInRange) {
  const auto [n, theta] = GetParam();
  ZipfGenerator zipf(n, theta);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.Sample(rng), n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ZipfParamTest,
    ::testing::Combine(::testing::Values(1, 2, 10, 1000),
                       ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0)));

TEST(HistogramTest, EmptyQuantilesAreZero) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(HistogramTest, QuantileAccuracy) {
  Histogram h;
  for (int i = 1; i <= 10000; ++i) h.Record(double(i) / 1000.0);  // 1ms..10s
  // Log-bucketed: ~4% relative error.
  EXPECT_NEAR(h.Quantile(0.5), 5.0, 0.3);
  EXPECT_NEAR(h.Quantile(0.99), 9.9, 0.5);
  EXPECT_NEAR(h.Mean(), 5.0005, 0.01);
}

TEST(HistogramTest, RecordNMatchesRepeatedRecord) {
  Histogram a, b;
  a.RecordN(0.25, 100);
  for (int i = 0; i < 100; ++i) b.Record(0.25);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
  EXPECT_DOUBLE_EQ(a.Quantile(0.9), b.Quantile(0.9));
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.Record(1.0);
  b.Record(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(RunningStatTest, MeanAndStdDev) {
  RunningStat s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_DOUBLE_EQ(s.Mean(), 5.0);
  EXPECT_NEAR(s.StdDev(), 2.138, 0.001);  // sample stddev
}

TEST(PopulationStdDevTest, KnownValue) {
  EXPECT_DOUBLE_EQ(PopulationStdDev({2, 4, 4, 4, 5, 5, 7, 9}), 2.0);
  EXPECT_DOUBLE_EQ(PopulationStdDev({}), 0.0);
  EXPECT_DOUBLE_EQ(PopulationStdDev({5.0}), 0.0);
}

TEST(StringsTest, StrSplit) {
  auto parts = StrSplit("a;b;;c", ';');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(StringsTest, LikeMatchBasics) {
  EXPECT_TRUE(LikeMatch("hello world", "hello%"));
  EXPECT_TRUE(LikeMatch("hello world", "%world"));
  EXPECT_TRUE(LikeMatch("hello world", "%lo wo%"));
  EXPECT_TRUE(LikeMatch("abc", "a_c"));
  EXPECT_FALSE(LikeMatch("abc", "a_d"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("aaa", "%a%a%"));
}

TEST(StringsTest, LikeMatchIsExactWithoutWildcards) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abcd", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "abcd"));
}

TEST(VarintTest, RoundTripBoundaries) {
  for (uint64_t v : {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull,
                     (1ull << 32), ~0ull}) {
    std::string buf;
    PutVarint64(&buf, v);
    size_t pos = 0;
    uint64_t out = 0;
    ASSERT_TRUE(GetVarint64(buf, &pos, &out));
    EXPECT_EQ(out, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, TruncatedFails) {
  std::string buf;
  PutVarint64(&buf, 1u << 20);
  buf.pop_back();
  size_t pos = 0;
  uint64_t out = 0;
  EXPECT_FALSE(GetVarint64(buf, &pos, &out));
}

TEST(VarintTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, "hello");
  PutLengthPrefixed(&buf, "");
  size_t pos = 0;
  std::string_view a, b;
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &a));
  ASSERT_TRUE(GetLengthPrefixed(buf, &pos, &b));
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
}

TEST(ClockTest, VirtualClockAdvances) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.Now(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.Now(), 150);
}

TEST(ClockTest, SkewedClockOffsets) {
  VirtualClock base(1000);
  SkewedClock skewed(&base, -30);
  EXPECT_EQ(skewed.Now(), 970);
  base.Advance(100);
  EXPECT_EQ(skewed.Now(), 1070);
}

}  // namespace
}  // namespace esdb
