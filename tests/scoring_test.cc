#include <gtest/gtest.h>

#include "cluster/esdb.h"
#include "query/parser.h"

namespace esdb {
namespace {

class ScoringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Esdb::Options options;
    options.num_shards = 4;
    options.routing = RoutingKind::kHash;
    options.store.refresh_doc_count = 0;
    db_ = std::make_unique<Esdb>(std::move(options));
    // Same tenant so everything lands on one shard run; titles with
    // varying term frequency and rarity.
    AddDoc(1, "novel");                       // one hit of 'novel'
    AddDoc(2, "novel novel novel");           // high tf
    AddDoc(3, "classic novel collection");    // one hit + extras
    AddDoc(4, "cotton shirt");                // no hit
    AddDoc(5, "rareword novel");              // contains a rare term
    db_->RefreshAll();
  }

  void AddDoc(int64_t record, const std::string& title) {
    Document doc;
    doc.Set(kFieldTenantId, Value(int64_t(1)));
    doc.Set(kFieldRecordId, Value(record));
    doc.Set(kFieldCreatedTime, Value(record));
    doc.Set("title", Value(title));
    ASSERT_TRUE(db_->Insert(std::move(doc)).ok());
  }

  std::unique_ptr<Esdb> db_;
};

TEST_F(ScoringTest, OrderByScoreRanksByRelevance) {
  auto result = db_->ExecuteSql(
      "SELECT * FROM t WHERE tenant_id = 1 AND MATCH(title, 'novel') "
      "ORDER BY _score DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 4u);  // doc 4 does not match
  // Highest term frequency first.
  EXPECT_EQ(result->rows[0].record_id(), 2);
  // Scores are attached, positive, and non-increasing.
  double prev = 1e9;
  for (const Document& row : result->rows) {
    const Value& score = row.Get(kFieldScore);
    ASSERT_TRUE(score.is_double());
    EXPECT_GT(score.as_double(), 0.0);
    EXPECT_LE(score.as_double(), prev);
    prev = score.as_double();
  }
}

TEST_F(ScoringTest, RareTermsScoreHigherThanCommonOnes) {
  auto result = db_->ExecuteSql(
      "SELECT * FROM t WHERE tenant_id = 1 AND "
      "MATCH(title, 'rareword novel') ORDER BY _score DESC LIMIT 1");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  // Doc 5 holds the rare term (high idf) plus 'novel'.
  EXPECT_EQ(result->rows[0].record_id(), 5);
}

TEST_F(ScoringTest, ScoreSelectableAsColumn) {
  auto result = db_->ExecuteSql(
      "SELECT record_id, _score FROM t WHERE tenant_id = 1 AND "
      "MATCH(title, 'novel') ORDER BY _score DESC LIMIT 2");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(result->rows[0].size(), 2u);
  EXPECT_TRUE(result->rows[0].Get(kFieldScore).is_double());
}

TEST_F(ScoringTest, NoMatchPredicateGivesZeroScores) {
  auto result = db_->ExecuteSql(
      "SELECT * FROM t WHERE tenant_id = 1 ORDER BY _score DESC");
  ASSERT_TRUE(result.ok());
  for (const Document& row : result->rows) {
    EXPECT_DOUBLE_EQ(row.Get(kFieldScore).as_double(), 0.0);
  }
}

TEST_F(ScoringTest, WithoutScoreSortNoScoreField) {
  auto result = db_->ExecuteSql(
      "SELECT * FROM t WHERE tenant_id = 1 AND MATCH(title, 'novel')");
  ASSERT_TRUE(result.ok());
  for (const Document& row : result->rows) {
    EXPECT_FALSE(row.Has(kFieldScore));  // scoring only when requested
  }
}

}  // namespace
}  // namespace esdb
