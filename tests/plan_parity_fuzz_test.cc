// Plan-choice parity fuzzer: for a randomized skewed corpus (several
// frozen segment generations, tombstone overlays from deletes) and a
// randomized query stream spanning the planner's query classes, the
// cost-model-chosen plan must return results identical to every
// forced access path — rules-only, composite index off, scan-list
// off — under both the row and the vectorized batch engine. The cost
// pass is a physical rewrite; any visible difference is a bug.
//
// The seed is printed via SCOPED_TRACE on failure; ESDB_FUZZ_ITERS
// overrides the number of random queries.

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/esdb.h"

namespace esdb {
namespace {

int FuzzIters(int fallback) {
  if (const char* env = std::getenv("ESDB_FUZZ_ITERS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

// Documents carry only int and string values, never explicit nulls:
// comparison predicates reject nulls while the keyword index stores
// them, so explicit nulls are outside the index<->filter equivalence
// both the rule planner's scan-list deferral and the cost pass assume.
std::unique_ptr<Esdb> BuildCorpus(std::mt19937* rng) {
  Esdb::Options options;
  options.num_shards = 4;
  options.routing = RoutingKind::kHash;
  options.store.refresh_doc_count = 0;
  // A single-column composite on created_time: exercises the
  // whole-index LIMIT/ORDER-BY pushdown (no leading equality).
  options.spec.composite_indexes.push_back({"created_time"});
  auto db = std::make_unique<Esdb>(std::move(options));

  const char* kTitles[] = {"alpha beta", "beta gamma", "delta ray",
                           "alpha delta", "epsilon"};
  std::vector<std::array<int64_t, 3>> routing_keys;  // tenant, record, ctime
  int64_t next_record = 0;
  for (int wave = 0; wave < 3; ++wave) {
    for (int i = 0; i < 200; ++i) {
      const int64_t id = next_record++;
      const uint32_t skew = (*rng)() % 100;
      const int64_t tenant = skew < 60 ? 1 : skew < 80 ? 2 : 3 + skew % 4;
      // Duplicated created_time values: ORDER BY ties exercise the
      // stable-order / superset-of-winners guarantees.
      const int64_t ctime = id / 3;
      Document doc;
      doc.Set(kFieldTenantId, Value(tenant));
      doc.Set(kFieldRecordId, Value(id));
      doc.Set(kFieldCreatedTime, Value(ctime));
      doc.Set("status", Value(int64_t((*rng)() % 5)));
      doc.Set("amount", Value(int64_t((*rng)() % 100)));
      doc.Set("group", Value(int64_t((*rng)() % 10)));
      doc.Set("title", Value(std::string(kTitles[(*rng)() % 5])));
      EXPECT_TRUE(db->Insert(std::move(doc)).ok());
      routing_keys.push_back({tenant, id, ctime});
    }
    db->RefreshAll();
    // Tombstone overlays over the already-frozen segments.
    for (int d = 0; d < 20 && !routing_keys.empty(); ++d) {
      const size_t pick = (*rng)() % routing_keys.size();
      const auto key = routing_keys[pick];
      routing_keys.erase(routing_keys.begin() + ptrdiff_t(pick));
      EXPECT_TRUE(db->Delete(key[0], key[1], key[2]).ok());
    }
    db->RefreshAll();
  }
  return db;
}

std::string RandomQuery(std::mt19937& rng) {
  auto pick = [&](int n) { return int(rng() % uint32_t(n)); };
  std::ostringstream sql;
  switch (pick(6)) {
    case 0: {  // tenant-scoped rows, optional sort + page
      sql << "SELECT * FROM t WHERE tenant_id = " << 1 + pick(6);
      if (pick(2)) sql << " AND status = " << pick(5);
      if (pick(2)) sql << " AND amount >= " << pick(100);
      if (pick(3)) {
        sql << " ORDER BY " << (pick(2) ? "created_time" : "record_id");
        if (pick(2)) sql << " DESC";
      }
      sql << " LIMIT " << 1 + pick(30);
      if (pick(2)) sql << " OFFSET " << pick(10);
      break;
    }
    case 1: {  // cross-shard conjunction (no tenant)
      sql << "SELECT * FROM t WHERE status = " << pick(5)
          << " AND amount BETWEEN " << pick(50) << " AND " << 50 + pick(50)
          << " LIMIT " << 1 + pick(25);
      break;
    }
    case 2: {  // whole-index ORDER BY pushdown
      sql << "SELECT * FROM t";
      if (pick(2)) sql << " WHERE amount >= " << pick(100);
      sql << " ORDER BY created_time";
      if (pick(2)) sql << " DESC";
      sql << " LIMIT " << 1 + pick(20);
      if (pick(2)) sql << " OFFSET " << pick(8);
      break;
    }
    case 3: {  // aggregates: stats-only candidates and not
      const char* kAggs[] = {"COUNT(*)", "MIN(created_time)",
                             "MAX(created_time)", "MIN(amount)",
                             "MAX(amount)", "SUM(amount)", "AVG(amount)"};
      sql << "SELECT " << kAggs[pick(7)] << " FROM t";
      switch (pick(3)) {
        case 0:
          break;
        case 1:
          sql << " WHERE tenant_id = " << 1 + pick(6);
          break;
        case 2:
          sql << " WHERE tenant_id = " << 1 + pick(6)
              << " AND created_time >= " << pick(200);
          break;
      }
      break;
    }
    case 4: {  // GROUP BY
      const char* kAggs[] = {"COUNT(*)", "MIN(amount)", "SUM(amount)"};
      sql << "SELECT group, " << kAggs[pick(3)] << " FROM t";
      if (pick(2)) sql << " WHERE tenant_id = " << 1 + pick(6);
      sql << " GROUP BY group";
      break;
    }
    default: {  // disjunctions and text predicates
      if (pick(2)) {
        sql << "SELECT * FROM t WHERE tenant_id = " << 1 + pick(4)
            << " AND (status = " << pick(5) << " OR group = " << pick(10)
            << ") LIMIT " << 1 + pick(20);
      } else {
        sql << "SELECT * FROM t WHERE title LIKE 'alpha%' AND amount < "
            << 1 + pick(100) << " LIMIT " << 1 + pick(20);
      }
      break;
    }
  }
  return sql.str();
}

void ExpectParity(const QueryResult& costed, const QueryResult& forced,
                  const std::string& label) {
  ASSERT_EQ(costed.rows.size(), forced.rows.size()) << label;
  for (size_t i = 0; i < costed.rows.size(); ++i) {
    ASSERT_EQ(costed.rows[i], forced.rows[i]) << label << " row " << i;
  }
  EXPECT_EQ(costed.agg_count, forced.agg_count) << label;
  EXPECT_EQ(costed.agg_sum, forced.agg_sum) << label;
  ASSERT_EQ(costed.agg_min.has_value(), forced.agg_min.has_value()) << label;
  if (forced.agg_min) {
    EXPECT_EQ(*costed.agg_min, *forced.agg_min) << label;
  }
  ASSERT_EQ(costed.agg_max.has_value(), forced.agg_max.has_value()) << label;
  if (forced.agg_max) {
    EXPECT_EQ(*costed.agg_max, *forced.agg_max) << label;
  }
  ASSERT_EQ(costed.groups.size(), forced.groups.size()) << label;
  auto it = costed.groups.begin();
  for (const auto& [key, stats] : forced.groups) {
    ASSERT_TRUE(it->first == key) << label;
    EXPECT_EQ(it->second.count, stats.count) << label;
    EXPECT_EQ(it->second.sum, stats.sum) << label;
    ASSERT_EQ(it->second.min.has_value(), stats.min.has_value()) << label;
    ASSERT_EQ(it->second.max.has_value(), stats.max.has_value()) << label;
    if (stats.min) {
      EXPECT_EQ(*it->second.min, *stats.min) << label;
    }
    if (stats.max) {
      EXPECT_EQ(*it->second.max, *stats.max) << label;
    }
    ++it;
  }
  // An early-terminating plan may undercount, but never overcount,
  // and must say it stopped early.
  if (costed.total_matched_exact && forced.total_matched_exact) {
    EXPECT_EQ(costed.total_matched, forced.total_matched) << label;
  } else {
    EXPECT_LE(costed.total_matched, forced.total_matched) << label;
  }
}

TEST(PlanParityFuzz, CostedPlanMatchesEveryForcedPath) {
  const uint32_t seed = 20260808;
  std::mt19937 rng(seed);
  auto db = BuildCorpus(&rng);

  PlannerOptions costed;  // composite + scan-list + cost model
  PlannerOptions rules_only = costed;
  rules_only.use_cost_model = false;
  PlannerOptions no_composite = rules_only;
  no_composite.use_composite_index = false;
  PlannerOptions no_scan_list = rules_only;
  no_scan_list.use_scan_list = false;
  const struct {
    const char* name;
    const PlannerOptions* options;
  } kForced[] = {{"rules-only", &rules_only},
                 {"no-composite", &no_composite},
                 {"no-scan-list", &no_scan_list}};

  const int iters = FuzzIters(120);
  for (int i = 0; i < iters; ++i) {
    const std::string sql = RandomQuery(rng);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " iter=" +
                 std::to_string(i) + " sql=" + sql);
    for (const bool batch : {false, true}) {
      db->SetBatchExecution(batch);
      auto reference = db->ExecuteSqlWithPlanner(sql, costed);
      ASSERT_TRUE(reference.ok()) << reference.status().message();
      for (const auto& forced : kForced) {
        auto result = db->ExecuteSqlWithPlanner(sql, *forced.options);
        ASSERT_TRUE(result.ok()) << result.status().message();
        ExpectParity(*reference, *result,
                     std::string(forced.name) + (batch ? " batch" : " row"));
      }
    }
  }
}

}  // namespace
}  // namespace esdb
