#include <gtest/gtest.h>

#include "balancer/load_balancer.h"
#include "balancer/monitor.h"

namespace esdb {
namespace {

LoadBalancer::Options TestOptions() {
  LoadBalancer::Options options;
  options.hotspot_threshold = 0.01;
  options.target_share_per_shard = 0.005;
  options.max_offset = 64;
  options.min_window_writes = 10;
  return options;
}

TEST(MonitorTest, AccumulatesAndDrains) {
  WorkloadMonitor monitor;
  monitor.RecordWrite(1);
  monitor.RecordWrite(1, 4);
  monitor.RecordWrite(2);
  EXPECT_EQ(monitor.window_total(), 6u);
  const auto window = monitor.Drain();
  EXPECT_EQ(window.at(1), 5u);
  EXPECT_EQ(window.at(2), 1u);
  EXPECT_EQ(monitor.window_total(), 0u);
  EXPECT_TRUE(monitor.Drain().empty());
}

TEST(ComputeOffsetSizeTest, PowersOfTwo) {
  const LoadBalancer balancer(TestOptions());
  // Tiny share: stays at 1.
  EXPECT_EQ(balancer.ComputeOffsetSize(0.001), 1u);
  // share/s must fall to <= 0.005.
  EXPECT_EQ(balancer.ComputeOffsetSize(0.008), 2u);
  EXPECT_EQ(balancer.ComputeOffsetSize(0.02), 4u);
  EXPECT_EQ(balancer.ComputeOffsetSize(0.04), 8u);
}

// Helper assertion exposed as a test: every returned offset is a
// power of two and capped.
TEST(ComputeOffsetSizeTest, AlwaysPowerOfTwoAndCapped) {
  const LoadBalancer balancer(TestOptions());
  for (double share = 0.0001; share <= 1.0; share *= 1.37) {
    const uint32_t s = balancer.ComputeOffsetSize(share);
    EXPECT_EQ(s & (s - 1), 0u) << share;  // power of two
    EXPECT_LE(s, 64u);
    EXPECT_GE(s, 1u);
  }
  EXPECT_EQ(balancer.ComputeOffsetSize(1.0), 64u);  // hits the cap
}

TEST(CheckHotSpotTest, Threshold) {
  const LoadBalancer balancer(TestOptions());
  EXPECT_FALSE(balancer.CheckHotSpot(0.009));
  EXPECT_TRUE(balancer.CheckHotSpot(0.01));
  EXPECT_TRUE(balancer.CheckHotSpot(0.5));
}

TEST(OnWindowTest, ProposesForHotspotsOnly) {
  const LoadBalancer balancer(TestOptions());
  RuleList current;
  std::map<TenantId, uint64_t> window;
  window[1] = 500;  // 50%: hotspot
  window[2] = 5;    // 0.5%: cold
  for (TenantId t = 3; t < 100; ++t) window[t] = 5;
  const auto proposals = balancer.OnWindow(window, current);
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_EQ(proposals[0].tenant, 1);
  EXPECT_GT(proposals[0].offset, 1u);
}

TEST(OnWindowTest, NoProposalWhenOffsetAlreadySufficient) {
  const LoadBalancer balancer(TestOptions());
  RuleList current;
  current.Update(0, 64, 1);
  std::map<TenantId, uint64_t> window = {{1, 995}, {2, 5}};
  EXPECT_TRUE(balancer.OnWindow(window, current).empty());
}

TEST(OnWindowTest, ProposalGrowsExistingOffset) {
  const LoadBalancer balancer(TestOptions());
  RuleList current;
  current.Update(0, 2, 1);
  std::map<TenantId, uint64_t> window = {{1, 995}, {2, 5}};
  const auto proposals = balancer.OnWindow(window, current);
  ASSERT_EQ(proposals.size(), 1u);
  EXPECT_GT(proposals[0].offset, 2u);
}

TEST(OnWindowTest, IgnoresTinyWindows) {
  const LoadBalancer balancer(TestOptions());
  RuleList current;
  std::map<TenantId, uint64_t> window = {{1, 5}};  // below min sample
  EXPECT_TRUE(balancer.OnWindow(window, current).empty());
}

TEST(InitializeFromStorageTest, LargeTenantsGetOffsets) {
  const LoadBalancer balancer(TestOptions());
  std::map<TenantId, uint64_t> storage;
  storage[1] = 1000000;  // dominates
  for (TenantId t = 2; t <= 101; ++t) storage[t] = 1000;
  const auto proposals = balancer.InitializeFromStorage(storage);
  ASSERT_FALSE(proposals.empty());
  EXPECT_EQ(proposals[0].tenant, 1);
  EXPECT_GT(proposals[0].offset, 1u);
  // Small tenants keep s = 1 (no proposal).
  for (const auto& p : proposals) EXPECT_EQ(p.tenant, 1);
}

TEST(InitializeFromStorageTest, EmptyStorage) {
  const LoadBalancer balancer(TestOptions());
  EXPECT_TRUE(balancer.InitializeFromStorage({}).empty());
}

}  // namespace
}  // namespace esdb
