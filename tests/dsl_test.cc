#include <gtest/gtest.h>

#include "common/random.h"
#include "document/document.h"
#include "query/dsl.h"
#include "query/normalize.h"
#include "query/parser.h"

namespace esdb {
namespace {

Query MustParseSql(std::string_view sql) {
  auto q = ParseSql(sql);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

Query MustParseDsl(std::string_view dsl) {
  auto q = ParseDsl(dsl);
  EXPECT_TRUE(q.ok()) << dsl << " -> " << q.status().ToString();
  return std::move(q).value();
}

// Reference evaluator (same as normalize_test's).
bool EvalExpr(const Expr& e, const Document& doc) {
  switch (e.kind) {
    case Expr::Kind::kPred:
      return e.pred.Eval(doc.Get(e.pred.column));
    case Expr::Kind::kNot:
      return !EvalExpr(*e.children[0], doc);
    case Expr::Kind::kAnd:
      for (const auto& c : e.children) {
        if (!EvalExpr(*c, doc)) return false;
      }
      return true;
    case Expr::Kind::kOr:
      for (const auto& c : e.children) {
        if (EvalExpr(*c, doc)) return true;
      }
      return false;
  }
  return false;
}

TEST(DslRenderTest, TermAndBool) {
  const Query q = MustParseSql(
      "SELECT * FROM t WHERE tenant_id = 7 AND status = 1");
  const std::string dsl = QueryToDsl(q);
  EXPECT_NE(dsl.find("\"bool\""), std::string::npos);
  EXPECT_NE(dsl.find("\"must\""), std::string::npos);
  EXPECT_NE(dsl.find("{\"term\": {\"tenant_id\": 7}}"), std::string::npos)
      << dsl;
}

TEST(DslRenderTest, RangeFromBetween) {
  const Query q =
      MustParseSql("SELECT * FROM t WHERE created_time BETWEEN 5 AND 9");
  const std::string dsl = QueryToDsl(q);
  EXPECT_NE(dsl.find("\"range\""), std::string::npos);
  EXPECT_NE(dsl.find("\"gte\": 5"), std::string::npos) << dsl;
  EXPECT_NE(dsl.find("\"lte\": 9"), std::string::npos) << dsl;
}

TEST(DslRenderTest, WildcardFromLike) {
  const Query q =
      MustParseSql("SELECT * FROM t WHERE title LIKE '%nov_l%'");
  const std::string dsl = QueryToDsl(q);
  EXPECT_NE(dsl.find("\"wildcard\": {\"title\": \"*nov?l*\"}"),
            std::string::npos)
      << dsl;
}

TEST(DslRenderTest, SortSizeSourceAggs) {
  const Query q = MustParseSql(
      "SELECT record_id, status FROM t WHERE a = 1 "
      "ORDER BY created_time DESC LIMIT 100");
  const std::string dsl = QueryToDsl(q);
  EXPECT_NE(dsl.find("\"size\": 100"), std::string::npos);
  EXPECT_NE(dsl.find("{\"created_time\": \"desc\"}"), std::string::npos);
  EXPECT_NE(dsl.find("\"_source\": [\"record_id\", \"status\"]"),
            std::string::npos)
      << dsl;

  const Query agg = MustParseSql("SELECT SUM(amount) FROM t");
  const std::string agg_dsl = QueryToDsl(agg);
  EXPECT_NE(agg_dsl.find("\"sum\": {\"field\": \"amount\"}"),
            std::string::npos)
      << agg_dsl;
}

TEST(DslParseTest, MatchAllMeansNoWhere) {
  const Query q = MustParseDsl(R"({"query": {"match_all": {}}})");
  EXPECT_EQ(q.where, nullptr);
}

TEST(DslParseTest, TermTermsRange) {
  Query q = MustParseDsl(R"({"query": {"term": {"tenant_id": 7}}})");
  EXPECT_EQ(q.where->pred.op, PredOp::kEq);
  EXPECT_EQ(q.where->pred.args[0].as_int(), 7);

  q = MustParseDsl(R"({"query": {"terms": {"status": [1, 2, 3]}}})");
  EXPECT_EQ(q.where->pred.op, PredOp::kIn);
  EXPECT_EQ(q.where->pred.args.size(), 3u);

  q = MustParseDsl(
      R"({"query": {"range": {"t": {"gte": 5, "lt": 9}}}})");
  ASSERT_EQ(q.where->kind, Expr::Kind::kAnd);
  EXPECT_EQ(q.where->children[0]->pred.op, PredOp::kGe);
  EXPECT_EQ(q.where->children[1]->pred.op, PredOp::kLt);
}

TEST(DslParseTest, DateStringsBecomeTimestamps) {
  const Query q = MustParseDsl(
      R"({"query": {"range": {"created_time":
          {"gte": "2021-09-16 00:00:00"}}}})");
  EXPECT_TRUE(q.where->pred.args[0].is_int());
}

TEST(DslParseTest, BoolCombinations) {
  const Query q = MustParseDsl(R"({
    "query": {"bool": {
      "must": [{"term": {"a": 1}}],
      "should": [{"term": {"b": 2}}, {"term": {"b": 3}}],
      "must_not": [{"term": {"c": 4}}]
    }}})");
  ASSERT_EQ(q.where->kind, Expr::Kind::kAnd);
  ASSERT_EQ(q.where->children.size(), 3u);
  EXPECT_EQ(q.where->children[0]->pred.column, "a");
  EXPECT_EQ(q.where->children[1]->kind, Expr::Kind::kOr);
  EXPECT_EQ(q.where->children[2]->kind, Expr::Kind::kNot);
}

TEST(DslParseTest, SortSizeSource) {
  const Query q = MustParseDsl(R"({
    "query": {"match_all": {}},
    "sort": [{"created_time": "desc"}, {"record_id": "asc"}],
    "size": 50,
    "_source": ["record_id"]})");
  ASSERT_EQ(q.order_by.size(), 2u);
  EXPECT_TRUE(q.order_by[0].descending);
  EXPECT_EQ(q.limit, 50);
  EXPECT_EQ(q.select_columns, std::vector<std::string>{"record_id"});
}

TEST(DslParseTest, Aggregations) {
  const Query q = MustParseDsl(R"({
    "query": {"match_all": {}},
    "aggs": {"total": {"avg": {"field": "amount"}}}})");
  EXPECT_EQ(q.agg, AggFunc::kAvg);
  EXPECT_EQ(q.agg_column, "amount");
}

TEST(DslParseTest, RejectsMalformed) {
  EXPECT_FALSE(ParseDsl("").ok());
  EXPECT_FALSE(ParseDsl("{}").ok());  // missing query
  EXPECT_FALSE(ParseDsl(R"({"query": {"frobnicate": {}}})").ok());
  EXPECT_FALSE(ParseDsl(R"({"query": {"term": {}}})").ok());
  EXPECT_FALSE(ParseDsl(R"({"query": {"range": {"t": {"weird": 1}}}})").ok());
  EXPECT_FALSE(ParseDsl(R"({"query": {"bool": {}}})").ok());
  EXPECT_FALSE(ParseDsl(R"({"query": {"match_all": {}}, "size": "x"})").ok());
  EXPECT_FALSE(ParseDsl(R"({"query" {"match_all": {}}})").ok());
}

TEST(SqlToDslTest, PaperExampleTranslates) {
  auto dsl = SqlToDsl(
      "SELECT * FROM transaction_logs WHERE tenant_id = 10086 "
      "AND created_time >= '2021-09-16 00:00:00' "
      "AND created_time <= '2021-09-17 00:00:00' "
      "AND status = 1 OR group = 666");
  ASSERT_TRUE(dsl.ok()) << dsl.status().ToString();
  // Round-trips through the DSL parser.
  EXPECT_TRUE(ParseDsl(*dsl).ok()) << *dsl;
  // Predicate merge collapsed the two time bounds into one range.
  EXPECT_NE(dsl->find("\"gte\""), std::string::npos);
  EXPECT_NE(dsl->find("\"lte\""), std::string::npos);
}

TEST(SqlToDslTest, PredicateMergeInTranslation) {
  auto dsl = SqlToDsl(
      "SELECT * FROM t WHERE tenant_id = 1 OR tenant_id = 2");
  ASSERT_TRUE(dsl.ok());
  EXPECT_NE(dsl->find("\"terms\": {\"tenant_id\": [1, 2]}"),
            std::string::npos)
      << *dsl;
}

// Property: SQL -> DSL -> Query preserves semantics (evaluated on
// random documents), for a spread of query shapes.
class DslRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DslRoundTripTest, SemanticsPreserved) {
  const std::string sql =
      std::string("SELECT * FROM t WHERE ") + GetParam();
  const Query original = MustParseSql(sql);
  auto dsl = SqlToDsl(sql);
  ASSERT_TRUE(dsl.ok()) << dsl.status().ToString();
  const Query round = MustParseDsl(*dsl);

  Rng rng(1234);
  for (int i = 0; i < 200; ++i) {
    Document doc;
    doc.Set("a", Value(int64_t(rng.Uniform(4))));
    doc.Set("b", Value(int64_t(rng.Uniform(4))));
    if (rng.Bernoulli(0.7)) doc.Set("c", Value(int64_t(rng.Uniform(4))));
    doc.Set("title", Value(std::string(
                         rng.Bernoulli(0.5) ? "classic novel" : "lamp")));
    ASSERT_NE(original.where, nullptr);
    ASSERT_NE(round.where, nullptr);
    EXPECT_EQ(EvalExpr(*original.where, doc), EvalExpr(*round.where, doc))
        << sql << "\n -> " << *dsl;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DslRoundTripTest,
    ::testing::Values(
        "a = 1", "a != 1", "a IN (1, 2)", "a BETWEEN 1 AND 2",
        "a >= 1 AND a < 3", "a = 1 AND b = 2", "a = 1 OR b = 2",
        "NOT (a = 1)", "a IS NULL", "c IS NOT NULL",
        "a = 1 AND (b = 2 OR c = 3)", "title LIKE '%novel%'",
        "MATCH(title, 'novel')", "NOT (a = 1 AND b = 2)",
        "a NOT IN (1, 2)", "(a = 1 OR a = 2) AND b != 0"));

}  // namespace
}  // namespace esdb
