#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

namespace esdb {
namespace {

TEST(ThreadPoolTest, SubmitReturnsResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[size_t(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  EXPECT_EQ(pool.Submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto ok = pool.Submit([] { return 1; });
  auto bad = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 1);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The worker that ran the throwing task must still be alive.
  EXPECT_EQ(pool.Submit([] { return 2; }).get(), 2);
}

TEST(ThreadPoolTest, TasksRunConcurrently) {
  // Two tasks that can only complete by observing each other: passes
  // only if the pool really runs them on distinct threads.
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int arrived = 0;
  auto rendezvous = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return arrived == 2; });
  };
  auto a = pool.Submit(rendezvous);
  auto b = pool.Submit(rendezvous);
  a.get();
  b.get();
  EXPECT_EQ(arrived, 2);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        executed.fetch_add(1);
      });
    }
    // Destructor: graceful shutdown finishes everything queued.
  }
  EXPECT_EQ(executed.load(), 64);
}

TEST(ThreadPoolTest, ManyProducersOneQueue) {
  ThreadPool pool(4);
  std::atomic<int> sum{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&pool, &sum] {
      std::vector<std::future<void>> futures;
      for (int i = 0; i < 200; ++i) {
        futures.push_back(pool.Submit([&sum] { sum.fetch_add(1); }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (std::thread& p : producers) p.join();
  EXPECT_EQ(sum.load(), 800);
}

}  // namespace
}  // namespace esdb
