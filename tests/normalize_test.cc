#include <gtest/gtest.h>

#include "common/random.h"
#include "document/document.h"
#include "query/normalize.h"
#include "query/parser.h"

namespace esdb {
namespace {

std::unique_ptr<Expr> ParseWhere(std::string_view where_clause) {
  auto q = ParseSql(std::string("SELECT * FROM t WHERE ") +
                    std::string(where_clause));
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q.value().where);
}

// Reference evaluator: evaluates an Expr directly against a document.
bool EvalExpr(const Expr& e, const Document& doc) {
  switch (e.kind) {
    case Expr::Kind::kPred:
      return e.pred.Eval(doc.Get(e.pred.column));
    case Expr::Kind::kNot:
      return !EvalExpr(*e.children[0], doc);
    case Expr::Kind::kAnd:
      for (const auto& c : e.children) {
        if (!EvalExpr(*c, doc)) return false;
      }
      return true;
    case Expr::Kind::kOr:
      for (const auto& c : e.children) {
        if (EvalExpr(*c, doc)) return true;
      }
      return false;
  }
  return false;
}

Document RandomDoc(Rng& rng) {
  Document doc;
  doc.Set("a", Value(int64_t(rng.Uniform(5))));
  doc.Set("b", Value(int64_t(rng.Uniform(5))));
  doc.Set("c", Value(int64_t(rng.Uniform(5))));
  if (rng.Bernoulli(0.3)) doc.Set("d", Value(int64_t(rng.Uniform(5))));
  return doc;
}

std::unique_ptr<Expr> RandomExpr(Rng& rng, int depth) {
  if (depth == 0 || rng.Bernoulli(0.4)) {
    Predicate p;
    const char* cols[] = {"a", "b", "c", "d"};
    p.column = cols[rng.Uniform(4)];
    switch (rng.Uniform(6)) {
      case 0: p.op = PredOp::kEq; break;
      case 1: p.op = PredOp::kNe; break;
      case 2: p.op = PredOp::kLt; break;
      case 3: p.op = PredOp::kGe; break;
      case 4: p.op = PredOp::kIsNull; break;
      default: p.op = PredOp::kBetween; break;
    }
    if (p.op == PredOp::kBetween) {
      const int64_t lo = int64_t(rng.Uniform(5));
      p.args = {Value(lo), Value(lo + int64_t(rng.Uniform(3)))};
    } else if (p.op != PredOp::kIsNull) {
      p.args = {Value(int64_t(rng.Uniform(5)))};
    }
    return Expr::MakePred(std::move(p));
  }
  switch (rng.Uniform(3)) {
    case 0:
      return Expr::MakeNot(RandomExpr(rng, depth - 1));
    case 1: {
      std::vector<std::unique_ptr<Expr>> cs;
      const size_t n = 2 + rng.Uniform(2);
      for (size_t i = 0; i < n; ++i) cs.push_back(RandomExpr(rng, depth - 1));
      return Expr::MakeAnd(std::move(cs));
    }
    default: {
      std::vector<std::unique_ptr<Expr>> cs;
      const size_t n = 2 + rng.Uniform(2);
      for (size_t i = 0; i < n; ++i) cs.push_back(RandomExpr(rng, depth - 1));
      return Expr::MakeOr(std::move(cs));
    }
  }
}

// True if e contains a NOT over a non-leaf.
bool HasStructuralNot(const Expr& e) {
  if (e.kind == Expr::Kind::kNot &&
      e.children[0]->kind != Expr::Kind::kPred) {
    return true;
  }
  for (const auto& c : e.children) {
    if (HasStructuralNot(*c)) return true;
  }
  return false;
}

bool IsCnfShape(const Expr& e) {
  // Literal, OR of literals, or AND of (literal | OR of literals).
  auto is_literal = [](const Expr& x) {
    return x.kind == Expr::Kind::kPred ||
           (x.kind == Expr::Kind::kNot &&
            x.children[0]->kind == Expr::Kind::kPred);
  };
  auto is_clause = [&](const Expr& x) {
    if (is_literal(x)) return true;
    if (x.kind != Expr::Kind::kOr) return false;
    for (const auto& c : x.children) {
      if (!is_literal(*c)) return false;
    }
    return true;
  };
  if (is_clause(e)) return true;
  if (e.kind != Expr::Kind::kAnd) return false;
  for (const auto& c : e.children) {
    if (!is_clause(*c)) return false;
  }
  return true;
}

// --- PushDownNot -------------------------------------------------------

TEST(PushDownNotTest, DeMorgan) {
  auto e = PushDownNot(ParseWhere("NOT (a = 1 AND b = 2)"));
  EXPECT_EQ(e->kind, Expr::Kind::kOr);
  // Comparison predicates have no exact complement under null
  // semantics, so the literal stays NOT(a = 1).
  EXPECT_EQ(e->children[0]->kind, Expr::Kind::kNot);
  EXPECT_EQ(e->children[0]->children[0]->pred.op, PredOp::kEq);
}

TEST(PushDownNotTest, IsNullFoldsIntoLeaf) {
  auto e = PushDownNot(ParseWhere("NOT (a IS NULL AND b IS NOT NULL)"));
  EXPECT_EQ(e->kind, Expr::Kind::kOr);
  EXPECT_EQ(e->children[0]->pred.op, PredOp::kIsNotNull);
  EXPECT_EQ(e->children[1]->pred.op, PredOp::kIsNull);
}

TEST(PushDownNotTest, DoubleNegationCancels) {
  auto e = PushDownNot(ParseWhere("NOT (NOT (a = 1))"));
  EXPECT_EQ(e->kind, Expr::Kind::kPred);
  EXPECT_EQ(e->pred.op, PredOp::kEq);
}

TEST(PushDownNotTest, NonNegatableLeafKeepsNot) {
  auto e = PushDownNot(ParseWhere("NOT (name LIKE 'x%')"));
  EXPECT_EQ(e->kind, Expr::Kind::kNot);
  EXPECT_EQ(e->children[0]->pred.op, PredOp::kLike);
}

// Property: NNF is semantically equivalent and NOT-free above leaves.
TEST(PushDownNotProperty, EquivalentAndNormalized) {
  Rng rng(101);
  for (int trial = 0; trial < 300; ++trial) {
    auto original = RandomExpr(rng, 3);
    auto nnf = PushDownNot(original->Clone());
    EXPECT_FALSE(HasStructuralNot(*nnf));
    for (int d = 0; d < 20; ++d) {
      const Document doc = RandomDoc(rng);
      EXPECT_EQ(EvalExpr(*original, doc), EvalExpr(*nnf, doc))
          << original->ToString() << "  vs  " << nnf->ToString();
    }
  }
}

// --- CNF / DNF ---------------------------------------------------------

TEST(CnfTest, DistributesOrOverAnd) {
  auto e = ToCnf(ParseWhere("a = 1 OR (b = 2 AND c = 3)"));
  EXPECT_TRUE(IsCnfShape(*e)) << e->ToString();
  EXPECT_EQ(e->kind, Expr::Kind::kAnd);
}

TEST(CnfTest, ReducesDepthOfPaperExample) {
  auto original = ParseWhere(
      "tenant_id = 10086 AND created_time >= 1 AND created_time <= 9 "
      "AND status = 1 OR group = 666");
  const size_t original_depth = original->Depth();
  auto cnf = ToCnf(std::move(original));
  EXPECT_TRUE(IsCnfShape(*cnf));
  EXPECT_LE(cnf->Depth(), original_depth);
}

// Property: CNF and DNF preserve semantics; CNF output has CNF shape
// unless the blow-up guard kicked in.
TEST(CnfDnfProperty, EquivalentToOriginal) {
  Rng rng(202);
  for (int trial = 0; trial < 200; ++trial) {
    auto original = RandomExpr(rng, 3);
    auto cnf = ToCnf(original->Clone());
    auto dnf = ToDnf(original->Clone());
    for (int d = 0; d < 20; ++d) {
      const Document doc = RandomDoc(rng);
      const bool expected = EvalExpr(*original, doc);
      EXPECT_EQ(EvalExpr(*cnf, doc), expected);
      EXPECT_EQ(EvalExpr(*dnf, doc), expected);
    }
  }
}

TEST(CnfTest, BlowupGuardReturnsNnf) {
  // (a=0 OR b=0) AND (a=1 OR b=1) AND ... in DNF explodes; with a tiny
  // budget the conversion must fall back without changing semantics.
  std::string clause = "(a = 0 OR b = 0)";
  std::string sql = clause;
  for (int i = 1; i < 12; ++i) {
    sql += " AND (a = " + std::to_string(i) + " OR b = " + std::to_string(i) +
           ")";
  }
  auto original = ParseWhere(sql);
  auto dnf = ToDnf(original->Clone(), /*max_nodes=*/64);
  EXPECT_LE(dnf->NodeCount(), 64u);
}

// --- Predicate merge -----------------------------------------------------

TEST(MergeTest, OrEqualitiesBecomeIn) {
  auto e = MergePredicates(ParseWhere("tenant_id = 1 OR tenant_id = 2"));
  EXPECT_EQ(e->kind, Expr::Kind::kPred);
  EXPECT_EQ(e->pred.op, PredOp::kIn);
  EXPECT_EQ(e->pred.args.size(), 2u);
}

TEST(MergeTest, OrInListsCombineAndDedupe) {
  auto e = MergePredicates(
      ParseWhere("a IN (1, 2) OR a = 2 OR a IN (3)"));
  EXPECT_EQ(e->pred.op, PredOp::kIn);
  EXPECT_EQ(e->pred.args.size(), 3u);
}

TEST(MergeTest, AndRangesBecomeBetween) {
  auto e = MergePredicates(ParseWhere("t >= 5 AND t <= 9"));
  EXPECT_EQ(e->kind, Expr::Kind::kPred);
  EXPECT_EQ(e->pred.op, PredOp::kBetween);
  EXPECT_EQ(e->pred.args[0].as_int(), 5);
  EXPECT_EQ(e->pred.args[1].as_int(), 9);
}

TEST(MergeTest, AndRangesTighten) {
  auto e = MergePredicates(ParseWhere("t >= 1 AND t >= 5 AND t <= 9 AND t <= 20"));
  EXPECT_EQ(e->pred.op, PredOp::kBetween);
  EXPECT_EQ(e->pred.args[0].as_int(), 5);
  EXPECT_EQ(e->pred.args[1].as_int(), 9);
}

TEST(MergeTest, ContradictionBecomesConstantFalse) {
  auto e = MergePredicates(ParseWhere("t > 9 AND t < 3"));
  EXPECT_TRUE(IsConstantFalse(*e)) << e->ToString();
  e = MergePredicates(ParseWhere("t = 1 AND t = 2"));
  EXPECT_TRUE(IsConstantFalse(*e)) << e->ToString();
}

TEST(MergeTest, EqualBoundsCollapseToEq) {
  auto e = MergePredicates(ParseWhere("t >= 7 AND t <= 7"));
  EXPECT_EQ(e->pred.op, PredOp::kEq);
  EXPECT_EQ(e->pred.args[0].as_int(), 7);
}

TEST(MergeTest, DuplicatePredicatesDropped) {
  auto e = MergePredicates(ParseWhere("a IS NULL AND a IS NULL"));
  EXPECT_EQ(e->kind, Expr::Kind::kPred);
}

TEST(MergeTest, DifferentColumnsUntouched) {
  auto e = MergePredicates(ParseWhere("a = 1 AND b = 2"));
  EXPECT_EQ(e->kind, Expr::Kind::kAnd);
  EXPECT_EQ(e->children.size(), 2u);
}

// Property: MergePredicates preserves semantics.
TEST(MergeProperty, EquivalentToOriginal) {
  Rng rng(303);
  for (int trial = 0; trial < 300; ++trial) {
    auto original = RandomExpr(rng, 3);
    auto merged = MergePredicates(original->Clone());
    for (int d = 0; d < 20; ++d) {
      const Document doc = RandomDoc(rng);
      EXPECT_EQ(EvalExpr(*original, doc), EvalExpr(*merged, doc))
          << original->ToString() << "  vs  " << merged->ToString();
    }
  }
}

// Property: the full planning pipeline preserves semantics.
TEST(NormalizeProperty, FullPipelineEquivalent) {
  Rng rng(404);
  for (int trial = 0; trial < 300; ++trial) {
    auto original = RandomExpr(rng, 3);
    auto normalized = NormalizeForPlanning(original->Clone());
    for (int d = 0; d < 20; ++d) {
      const Document doc = RandomDoc(rng);
      EXPECT_EQ(EvalExpr(*original, doc), EvalExpr(*normalized, doc))
          << original->ToString() << "  vs  " << normalized->ToString();
    }
  }
}

}  // namespace
}  // namespace esdb
