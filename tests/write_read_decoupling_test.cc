// Write/read decoupling tests: DML — including DELETE and
// routing-key UPDATE — hammers a shard while reader threads query it
// concurrently. No phasing anywhere: deletes are copy-on-write
// tombstone overlays published as immutable epochs, so every query
// observes a snapshot-consistent row count bracketed by the refresh
// and delete boundaries it straddled. Runs under TSan in CI.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/esdb.h"
#include "storage/shard_store.h"

namespace esdb {
namespace {

Document MakeDoc(int64_t id, int64_t tenant) {
  Document doc;
  doc.Set(kFieldTenantId, Value(tenant));
  doc.Set(kFieldRecordId, Value(id));
  doc.Set(kFieldCreatedTime, Value(id));
  doc.Set("status", Value(id % 5));
  return doc;
}

WriteOp Insert(int64_t id, int64_t tenant) {
  return WriteOp{OpType::kInsert, MakeDoc(id, tenant)};
}

WriteOp DeleteOp(int64_t id, int64_t tenant) {
  WriteOp op;
  op.type = OpType::kDelete;
  op.doc.Set(kFieldTenantId, Value(tenant));
  op.doc.Set(kFieldRecordId, Value(id));
  op.doc.Set(kFieldCreatedTime, Value(id));
  return op;
}

// DML vs. queries on one cluster, one hot tenant (single shard under
// hash routing): a writer inserts, refreshes, DELETEs refreshed rows
// and moves rows to another tenant via routing-key UPDATE, while
// reader threads run broadcast counts and hot-tenant queries the
// whole time.
//
// Snapshot-consistency invariant. All counters are monotone:
//   pub(t)  = inserts made searchable by a completed refresh,
//   del(t)  = deletes visible (published overlay epochs),
// and a query pinning its snapshots at time t sees pub(t) - del(t)
// rows. Bracketing with counters read around the query:
//   floor   = published_done(before) - deletes_started(after)
//   ceiling = refresh_started(after) - deletes_done(before)
// ("started" counters bump before the operation, "done" after, so an
// operation concurrent with the query is counted permissively on the
// side it can affect).
TEST(WriteReadDecouplingTest, DmlVsConcurrentQueries) {
  Esdb::Options options;
  options.num_shards = 4;
  options.routing = RoutingKind::kHash;
  options.store.refresh_doc_count = 0;   // manual refresh only
  options.store.merge.max_segments = 3;  // force merges during the run
  options.query_threads = 2;
  Esdb db(options);

  constexpr int kRounds = 10;
  constexpr int kBatch = 150;
  constexpr int kDeletesPerRound = 25;
  constexpr int kReaders = 4;
  constexpr int64_t kHotTenant = 7;
  constexpr int64_t kColdTenant = 999;

  std::atomic<uint64_t> inserted_total{0};
  std::atomic<uint64_t> refresh_started{0};
  std::atomic<uint64_t> published_done{0};
  std::atomic<uint64_t> deletes_started{0};
  std::atomic<uint64_t> deletes_done{0};
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    int64_t next_id = 0;
    std::vector<int64_t> live;  // refreshed hot-tenant rows not yet touched
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kBatch; ++i) {
        if (!db.Insert(MakeDoc(next_id, kHotTenant)).ok()) {
          failures.fetch_add(1);
        }
        live.push_back(next_id);
        ++next_id;
        inserted_total.fetch_add(1, std::memory_order_release);
      }
      refresh_started.store(inserted_total.load(), std::memory_order_release);
      db.RefreshAll();  // concurrent with the readers below
      published_done.store(refresh_started.load(), std::memory_order_release);

      // DELETE refreshed rows. An acked delete of a refreshed row is
      // visible immediately (tombstone epoch publish, no refresh
      // needed); record ids are never reused, so the targeted probe
      // must see zero rows.
      for (int d = 0; d < kDeletesPerRound && !live.empty(); ++d) {
        const int64_t victim = live.front();
        live.erase(live.begin());
        deletes_started.fetch_add(1, std::memory_order_release);
        if (!db.Delete(kHotTenant, victim, victim).ok()) {
          failures.fetch_add(1);
        }
        deletes_done.fetch_add(1, std::memory_order_release);
        auto probe = db.ExecuteSql("SELECT COUNT(*) FROM t WHERE record_id = " +
                                   std::to_string(victim));
        if (!probe.ok() || probe->agg_count != 0) violations.fetch_add(1);
      }

      // Routing-key UPDATE: move one refreshed row to another tenant.
      // The old version dies now (delete via its original routing
      // key); the re-routed copy is buffered until the next refresh —
      // bookkeeping-wise one delete plus one insert.
      if (!live.empty()) {
        const int64_t moved = live.back();
        live.pop_back();
        deletes_started.fetch_add(1, std::memory_order_release);
        auto updated = db.ExecuteDmlSql(
            "UPDATE t SET tenant_id = " + std::to_string(kColdTenant) +
            " WHERE record_id = " + std::to_string(moved));
        if (!updated.ok() || *updated != 1) failures.fetch_add(1);
        deletes_done.fetch_add(1, std::memory_order_release);
        inserted_total.fetch_add(1, std::memory_order_release);
      }
    }
    refresh_started.store(inserted_total.load(), std::memory_order_release);
    db.RefreshAll();  // surface the last round's moved copies
    published_done.store(refresh_started.load(), std::memory_order_release);
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const int64_t pub_before =
            int64_t(published_done.load(std::memory_order_acquire));
        const int64_t del_done_before =
            int64_t(deletes_done.load(std::memory_order_acquire));
        auto count = db.ExecuteSql("SELECT COUNT(*) FROM t");
        const int64_t started_after =
            int64_t(refresh_started.load(std::memory_order_acquire));
        const int64_t del_started_after =
            int64_t(deletes_started.load(std::memory_order_acquire));
        if (!count.ok()) {
          failures.fetch_add(1);
          continue;
        }
        const int64_t seen = int64_t(count->agg_count);
        if (seen < pub_before - del_started_after ||
            seen > started_after - del_done_before) {
          violations.fetch_add(1);
        }
        // Hot-tenant query: resolves to <= 2 shards, so it takes the
        // inline fan-out path concurrently with the same DML.
        auto rows = db.ExecuteSql("SELECT * FROM t WHERE tenant_id = " +
                                  std::to_string(kHotTenant) +
                                  " ORDER BY created_time DESC LIMIT 10");
        if (!rows.ok()) failures.fetch_add(1);
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(violations.load(), 0);

  // Quiescent: exactly inserts minus deletes remain.
  auto final_count = db.ExecuteSql("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->agg_count,
            inserted_total.load() - deletes_done.load());
}

// The same decoupling at the ShardStore layer: one writer thread
// applies inserts, deletes and refreshes against a single store while
// reader threads pin snapshots and count live docs through the views.
// Pure TSan fodder for the copy-on-write tombstone publish path.
TEST(WriteReadDecouplingTest, ShardStoreDmlVsSnapshotReaders) {
  IndexSpec spec = IndexSpec::TransactionLogDefault();
  ShardStore::Options options;
  options.refresh_doc_count = 0;
  options.merge.max_segments = 3;
  ShardStore store(&spec, options);

  constexpr int kRounds = 15;
  constexpr int kBatch = 80;
  constexpr int kDeletesPerRound = 15;
  constexpr int kReaders = 3;

  std::atomic<uint64_t> published_done{0};
  std::atomic<uint64_t> refresh_started{0};
  std::atomic<uint64_t> deletes_started{0};
  std::atomic<uint64_t> deletes_done{0};
  std::atomic<bool> done{false};
  std::atomic<int> violations{0};
  std::atomic<int> failures{0};

  std::thread writer([&] {
    int64_t next_id = 0;
    std::vector<int64_t> live;
    for (int round = 0; round < kRounds; ++round) {
      for (int i = 0; i < kBatch; ++i) {
        if (!store.Apply(Insert(next_id, 1)).ok()) failures.fetch_add(1);
        live.push_back(next_id);
        ++next_id;
      }
      refresh_started.store(uint64_t(next_id), std::memory_order_release);
      store.Refresh();
      store.MaybeMerge();
      published_done.store(uint64_t(next_id), std::memory_order_release);
      for (int d = 0; d < kDeletesPerRound && !live.empty(); ++d) {
        const int64_t victim = live.front();
        live.erase(live.begin());
        deletes_started.fetch_add(1, std::memory_order_release);
        if (!store.Apply(DeleteOp(victim, 1)).ok()) failures.fetch_add(1);
        deletes_done.fetch_add(1, std::memory_order_release);
        if (store.GetByRecordId(victim).ok()) violations.fetch_add(1);
      }
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const int64_t pub_before =
            int64_t(published_done.load(std::memory_order_acquire));
        const int64_t del_done_before =
            int64_t(deletes_done.load(std::memory_order_acquire));
        // Pin one epoch; walk it entirely through the views. The view
        // is immutable, so this cannot race with the writer.
        const SegmentSnapshot snap = store.Snapshot();
        int64_t seen = 0;
        for (const SegmentView& view : *snap) {
          seen += int64_t(view.num_live_docs());
          // Spot-check the overlay agrees with LiveDocs.
          if (view.LiveDocs().size() != view.num_live_docs()) {
            violations.fetch_add(1);
          }
        }
        const int64_t started_after =
            int64_t(refresh_started.load(std::memory_order_acquire));
        const int64_t del_started_after =
            int64_t(deletes_started.load(std::memory_order_acquire));
        if (seen < pub_before - del_started_after ||
            seen > started_after - del_done_before) {
          violations.fetch_add(1);
        }
      }
    });
  }

  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(violations.load(), 0);
  EXPECT_EQ(store.num_live_docs(),
            size_t(kRounds * kBatch) - deletes_done.load());
}

// A pinned snapshot observes a frozen set of deletes: DML published
// after the pin is invisible to it, while a fresh snapshot sees it.
TEST(WriteReadDecouplingTest, PinnedSnapshotFreezesDeletes) {
  IndexSpec spec = IndexSpec::TransactionLogDefault();
  ShardStore::Options options;
  options.refresh_doc_count = 0;
  ShardStore store(&spec, options);
  for (int64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, 1)).ok());
  }
  store.Refresh();

  const SegmentSnapshot pinned = store.Snapshot();
  ASSERT_TRUE(store.Apply(DeleteOp(2, 1)).ok());

  size_t pinned_live = 0;
  for (const SegmentView& view : *pinned) pinned_live += view.num_live_docs();
  EXPECT_EQ(pinned_live, 4u);  // the epoch the reader holds is frozen

  const SegmentSnapshot fresh = store.Snapshot();
  size_t fresh_live = 0;
  for (const SegmentView& view : *fresh) fresh_live += view.num_live_docs();
  EXPECT_EQ(fresh_live, 3u);
  EXPECT_FALSE(store.GetByRecordId(2).ok());
}

// Merge folds the tombstone overlay back into the merged segment —
// and a heavily-deleted segment merges even when the shard is under
// max_segments (gc_deleted_fraction trigger).
TEST(WriteReadDecouplingTest, MergeGcFoldsTombstoneOverlay) {
  IndexSpec spec = IndexSpec::TransactionLogDefault();
  ShardStore::Options options;
  options.refresh_doc_count = 0;  // defaults: max_segments = 8
  ShardStore store(&spec, options);
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, 1)).ok());
  }
  store.Refresh();
  ASSERT_EQ(store.num_segments(), 1u);

  // 60% deleted > gc_deleted_fraction (0.5) — merge is due despite
  // being far under the segment-count cap.
  for (int64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(store.Apply(DeleteOp(i, 1)).ok());
  }
  EXPECT_TRUE(store.MaybeMerge());

  const SegmentSnapshot snap = store.Snapshot();
  size_t live = 0;
  for (const SegmentView& view : *snap) {
    EXPECT_EQ(view.num_deleted(), 0u);  // overlay folded away
    EXPECT_EQ(view.tombstones, nullptr);
    live += view.num_live_docs();
  }
  EXPECT_EQ(live, 4u);
  for (int64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(store.GetByRecordId(i).ok(), i >= 6) << "record " << i;
  }
}

// Tombstone overlays shrink the shard-size signal immediately: a
// shard whose rows are half tombstoned must weigh roughly half, even
// before any merge GCs the segment (stale sizes would skew the
// balancer and replication cost accounting).
TEST(WriteReadDecouplingTest, TombstonesShrinkShardSizeSignal) {
  IndexSpec spec = IndexSpec::TransactionLogDefault();
  ShardStore::Options options;
  options.refresh_doc_count = 0;
  options.merge.max_segments = 100;          // keep the merge out of it
  options.merge.gc_deleted_fraction = 1.1;   // disable GC for this test
  ShardStore store(&spec, options);
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.Apply(Insert(i, 1)).ok());
  }
  store.Refresh();
  // Segment portion of the signal only: delete ops are retained in
  // the translog until the next refresh checkpoint (recovery still
  // needs to replay them), so total SizeBytes() carries a constant
  // translog term that would drown the scaling under test.
  const auto segment_bytes = [&store] {
    size_t bytes = 0;
    for (const SegmentView& view : *store.Snapshot()) {
      bytes += view.LiveSizeBytes();
    }
    return bytes;
  };
  const size_t before = segment_bytes();
  ASSERT_GT(before, 0u);

  for (int64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(store.Apply(DeleteOp(i, 1)).ok());
  }
  const size_t after = segment_bytes();
  EXPECT_LT(after, before * 6 / 10);  // ~half, with slack for rounding
  EXPECT_GT(after, before * 4 / 10);
}

// Adaptive fan-out (tenant-scoped queries run inline even with a
// pool) must not change results: byte-identical rows between
// query_threads = 0 and query_threads = 4, for both the inline
// tenant-scoped shape and the pooled broadcast shape.
TEST(WriteReadDecouplingTest, InlineFanOutMatchesPooled) {
  Esdb::Options base;
  base.num_shards = 8;
  base.routing = RoutingKind::kHash;
  base.store.refresh_doc_count = 0;
  Esdb serial(base);
  Esdb::Options pooled_options = base;
  pooled_options.query_threads = 4;
  Esdb pooled(pooled_options);

  for (int64_t i = 0; i < 600; ++i) {
    const int64_t tenant = 1 + i % 12;
    ASSERT_TRUE(serial.Insert(MakeDoc(i, tenant)).ok());
    ASSERT_TRUE(pooled.Insert(MakeDoc(i, tenant)).ok());
  }
  serial.RefreshAll();
  pooled.RefreshAll();

  const std::vector<std::string> queries = {
      // Tenant-scoped: <= 2 shards -> inline path in `pooled`.
      "SELECT * FROM t WHERE tenant_id = 3 ORDER BY created_time DESC "
      "LIMIT 20",
      "SELECT COUNT(*) FROM t WHERE tenant_id = 5",
      // Broadcast: wide fan-out -> pool path in `pooled`.
      "SELECT * FROM t WHERE status = 2 ORDER BY created_time DESC LIMIT 25",
      "SELECT COUNT(*) FROM t",
  };
  for (const std::string& sql : queries) {
    auto a = serial.ExecuteSql(sql);
    auto b = pooled.ExecuteSql(sql);
    ASSERT_TRUE(a.ok()) << sql;
    ASSERT_TRUE(b.ok()) << sql;
    EXPECT_EQ(a->total_matched, b->total_matched) << sql;
    EXPECT_EQ(a->agg_count, b->agg_count) << sql;
    ASSERT_EQ(a->rows.size(), b->rows.size()) << sql;
    for (size_t i = 0; i < a->rows.size(); ++i) {
      EXPECT_EQ(a->rows[i], b->rows[i]) << sql << " row " << i;
    }
  }
}

}  // namespace
}  // namespace esdb
