#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/merge_policy.h"
#include "storage/shard_store.h"

namespace esdb {
namespace {

IndexSpec TestSpec() {
  IndexSpec spec;
  spec.composite_indexes = {{"tenant_id", "created_time"}};
  return spec;
}

WriteOp Insert(int64_t tenant, int64_t record, int64_t time,
               int64_t status = 0) {
  WriteOp op;
  op.type = OpType::kInsert;
  op.doc.Set(kFieldTenantId, Value(tenant));
  op.doc.Set(kFieldRecordId, Value(record));
  op.doc.Set(kFieldCreatedTime, Value(time));
  op.doc.Set("status", Value(status));
  return op;
}

WriteOp Delete(int64_t tenant, int64_t record, int64_t time) {
  WriteOp op;
  op.type = OpType::kDelete;
  op.doc.Set(kFieldTenantId, Value(tenant));
  op.doc.Set(kFieldRecordId, Value(record));
  op.doc.Set(kFieldCreatedTime, Value(time));
  return op;
}

ShardStore::Options ManualRefresh() {
  ShardStore::Options options;
  options.refresh_doc_count = 0;
  return options;
}

TEST(TranslogTest, AppendGetTruncate) {
  Translog log;
  const WriteOp op = Insert(1, 10, 100);
  EXPECT_EQ(log.Append(op), 0u);
  EXPECT_EQ(log.Append(op), 1u);
  EXPECT_EQ(log.end_seq(), 2u);

  auto got = log.Get(1);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->doc.record_id(), 10);
  EXPECT_FALSE(log.Get(2).ok());

  log.TruncateBefore(1);
  EXPECT_EQ(log.begin_seq(), 1u);
  EXPECT_FALSE(log.Get(0).ok());
  EXPECT_TRUE(log.Get(1).ok());
}

TEST(TranslogTest, WriteOpEncodeDecode) {
  const WriteOp op = Delete(3, 42, 999);
  auto decoded = WriteOp::Decode(op.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->type, OpType::kDelete);
  EXPECT_EQ(decoded->record_id(), 42);
  EXPECT_FALSE(WriteOp::Decode("").ok());
  EXPECT_FALSE(WriteOp::Decode("\x09junk").ok());
}

TEST(ShardStoreTest, NearRealTimeVisibility) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, ManualRefresh());
  ASSERT_TRUE(store.Apply(Insert(1, 100, 1000)).ok());
  // Not yet refreshed: invisible to search, but point reads are
  // read-your-writes (they consult the write buffer first).
  EXPECT_EQ(store.num_live_docs(), 0u);
  EXPECT_TRUE(store.GetByRecordId(100).ok());
  EXPECT_EQ(store.buffered_docs(), 1u);

  EXPECT_TRUE(store.Refresh());
  EXPECT_EQ(store.num_live_docs(), 1u);
  EXPECT_TRUE(store.GetByRecordId(100).ok());
}

// Regression: GetByRecordId used to read only the published segment
// epoch, so an un-refreshed insert was invisible, an un-refreshed
// update returned the STALE segment copy, and an un-refreshed delete
// resurrected the deleted document. The point-read path must consult
// the write buffer (newest wins) before any segment.
TEST(ShardStoreTest, GetByRecordIdReadsYourWrites) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, ManualRefresh());

  // Insert before any refresh: visible immediately.
  ASSERT_TRUE(store.Apply(Insert(1, 100, 1000, /*status=*/1)).ok());
  auto doc = store.GetByRecordId(100);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("status").as_int(), 1);

  // Update buffered on top of a refreshed copy: buffer wins.
  EXPECT_TRUE(store.Refresh());
  ASSERT_TRUE(store.Apply(Insert(1, 100, 1000, /*status=*/2)).ok());
  doc = store.GetByRecordId(100);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("status").as_int(), 2);

  // Buffered delete of a refreshed document: gone immediately, not
  // resurrected from the segment.
  EXPECT_TRUE(store.Refresh());
  ASSERT_TRUE(store.Apply(Delete(1, 100, 1000)).ok());
  EXPECT_FALSE(store.GetByRecordId(100).ok());
  store.Refresh();
  EXPECT_FALSE(store.GetByRecordId(100).ok());
}

TEST(ShardStoreTest, UpsertReplacesAcrossRefresh) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, ManualRefresh());
  ASSERT_TRUE(store.Apply(Insert(1, 100, 1000, /*status=*/0)).ok());
  store.Refresh();
  ASSERT_TRUE(store.Apply(Insert(1, 100, 1000, /*status=*/5)).ok());
  store.Refresh();

  EXPECT_EQ(store.num_live_docs(), 1u);
  auto doc = store.GetByRecordId(100);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->Get("status").as_int(), 5);
}

TEST(ShardStoreTest, UpsertWithinBuffer) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, ManualRefresh());
  ASSERT_TRUE(store.Apply(Insert(1, 100, 1000, 0)).ok());
  ASSERT_TRUE(store.Apply(Insert(1, 100, 1000, 7)).ok());
  store.Refresh();
  EXPECT_EQ(store.num_live_docs(), 1u);
  EXPECT_EQ(store.GetByRecordId(100)->Get("status").as_int(), 7);
}

TEST(ShardStoreTest, DeleteInBufferAndSegment) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, ManualRefresh());
  ASSERT_TRUE(store.Apply(Insert(1, 1, 10)).ok());
  ASSERT_TRUE(store.Apply(Insert(1, 2, 20)).ok());
  store.Refresh();
  ASSERT_TRUE(store.Apply(Insert(1, 3, 30)).ok());

  // Delete one refreshed and one buffered record.
  ASSERT_TRUE(store.Apply(Delete(1, 1, 10)).ok());
  ASSERT_TRUE(store.Apply(Delete(1, 3, 30)).ok());
  store.Refresh();

  EXPECT_EQ(store.num_live_docs(), 1u);
  EXPECT_FALSE(store.GetByRecordId(1).ok());
  EXPECT_TRUE(store.GetByRecordId(2).ok());
  EXPECT_FALSE(store.GetByRecordId(3).ok());
}

TEST(ShardStoreTest, DeleteNonexistentIsNoop) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, ManualRefresh());
  EXPECT_TRUE(store.Apply(Delete(1, 999, 0)).ok());
  EXPECT_EQ(store.num_live_docs(), 0u);
}

TEST(ShardStoreTest, WriteWithoutRecordIdFails) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, ManualRefresh());
  WriteOp op;
  op.type = OpType::kInsert;
  op.doc.Set(kFieldTenantId, Value(int64_t(1)));
  EXPECT_FALSE(store.Apply(op).ok());
}

TEST(ShardStoreTest, AutoRefreshAtThreshold) {
  IndexSpec spec = TestSpec();
  ShardStore::Options options;
  options.refresh_doc_count = 10;
  ShardStore store(&spec, options);
  for (int64_t i = 0; i < 25; ++i) {
    ASSERT_TRUE(store.Apply(Insert(1, i, i)).ok());
  }
  // Two refreshes happened; 5 docs still buffered.
  EXPECT_EQ(store.num_live_docs(), 20u);
  EXPECT_EQ(store.buffered_docs(), 5u);
  EXPECT_GE(store.num_segments(), 2u);
}

TEST(ShardStoreTest, MergeReducesSegmentsPreservesDocs) {
  IndexSpec spec = TestSpec();
  ShardStore::Options options = ManualRefresh();
  options.merge.max_segments = 3;
  ShardStore store(&spec, options);
  for (int64_t seg = 0; seg < 6; ++seg) {
    for (int64_t i = 0; i < 4; ++i) {
      ASSERT_TRUE(store.Apply(Insert(1, seg * 10 + i, seg * 100 + i)).ok());
    }
    store.Refresh();
  }
  EXPECT_EQ(store.num_segments(), 6u);
  EXPECT_TRUE(store.MaybeMerge());
  EXPECT_LE(store.num_segments(), 3u);
  EXPECT_EQ(store.num_live_docs(), 24u);
  EXPECT_GT(store.merged_docs_total(), 0u);
  // Every record still retrievable.
  for (int64_t seg = 0; seg < 6; ++seg) {
    for (int64_t i = 0; i < 4; ++i) {
      EXPECT_TRUE(store.GetByRecordId(seg * 10 + i).ok());
    }
  }
}

TEST(ShardStoreTest, MergeDropsTombstonedDocs) {
  IndexSpec spec = TestSpec();
  ShardStore::Options options = ManualRefresh();
  options.merge.max_segments = 1;
  ShardStore store(&spec, options);
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Apply(Insert(1, i, i)).ok());
  }
  store.Refresh();
  ASSERT_TRUE(store.Apply(Delete(1, 3, 3)).ok());
  for (int64_t i = 10; i < 14; ++i) {
    ASSERT_TRUE(store.Apply(Insert(1, i, i)).ok());
  }
  store.Refresh();
  store.MaybeMerge();
  EXPECT_EQ(store.num_live_docs(), 13u);
  const SegmentSnapshot snapshot = store.Snapshot();
  for (const SegmentView& seg : *snapshot) {
    EXPECT_EQ(seg.num_deleted(), 0u);  // merge purges tombstones
  }
}

TEST(ShardStoreTest, FlushTruncatesTranslog) {
  IndexSpec spec = TestSpec();
  ShardStore store(&spec, ManualRefresh());
  for (int64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Apply(Insert(1, i, i)).ok());
  }
  EXPECT_EQ(store.translog().num_entries(), 5u);
  store.Refresh();
  store.Flush();
  EXPECT_EQ(store.translog().num_entries(), 0u);
  // Un-refreshed ops stay in the log across flush.
  ASSERT_TRUE(store.Apply(Insert(1, 100, 100)).ok());
  store.Flush();
  EXPECT_EQ(store.translog().num_entries(), 1u);
}

// Property: recovery from the translog reproduces the exact live set,
// for random op sequences (inserts, upserts, deletes).
TEST(ShardStoreProperty, RecoveryEqualsReplay) {
  Rng rng(31);
  for (int trial = 0; trial < 20; ++trial) {
    IndexSpec spec = TestSpec();
    ShardStore store(&spec, ManualRefresh());
    Translog full_log;  // untruncated copy of everything applied
    const int ops = 100;
    for (int i = 0; i < ops; ++i) {
      const int64_t record = int64_t(rng.Uniform(30));
      WriteOp op = rng.Bernoulli(0.25) ? Delete(1, record, i)
                                       : Insert(1, record, i, int64_t(i));
      full_log.Append(op);
      ASSERT_TRUE(store.Apply(op).ok());
      if (rng.Bernoulli(0.1)) store.Refresh();
    }
    store.Refresh();

    auto recovered = ShardStore::Recover(&spec, full_log, ManualRefresh());
    ASSERT_TRUE(recovered.ok());
    (*recovered)->Refresh();
    EXPECT_EQ((*recovered)->num_live_docs(), store.num_live_docs());
    for (int64_t record = 0; record < 30; ++record) {
      auto a = store.GetByRecordId(record);
      auto b = (*recovered)->GetByRecordId(record);
      EXPECT_EQ(a.ok(), b.ok()) << "record " << record;
      if (a.ok() && b.ok()) {
        EXPECT_EQ(*a, *b);
      }
    }
  }
}

TEST(MergePolicyTest, NoMergeUnderCap) {
  MergePolicy policy(MergePolicy::Options{4, 8});
  EXPECT_TRUE(policy.PickMerge({100, 200, 300, 400}).empty());
  EXPECT_TRUE(policy.PickMerge({}).empty());
}

TEST(MergePolicyTest, PicksSmallestSegments) {
  MergePolicy policy(MergePolicy::Options{3, 8});
  // 5 segments, cap 3: merge 3 smallest (excess 2 -> inputs 3).
  const auto picked = policy.PickMerge({500, 10, 400, 20, 30});
  EXPECT_EQ(picked, (std::vector<size_t>{1, 3, 4}));
}

TEST(MergePolicyTest, RespectsMaxInputs) {
  MergePolicy policy(MergePolicy::Options{2, 3});
  const auto picked = policy.PickMerge({1, 2, 3, 4, 5, 6, 7, 8});
  EXPECT_EQ(picked.size(), 3u);
}

// Regression: the under-cap GC path used to pair a lone GC candidate
// with the smallest OTHER segment unconditionally — when the only
// other segments were huge, GC of a tiny segment dragged the shard's
// largest segment into a rewrite on every round (quadratic write
// amplification). The companion must be bounded by
// gc_companion_max_ratio x the candidate's size.
TEST(MergePolicyTest, GcCompanionBoundedBySizeRatio) {
  MergePolicy policy(MergePolicy::Options{8, 8, 0.5, 4.0});

  // Candidate at index 1 (size 10, 60% deleted). The only other
  // segments are 100x its size: no companion qualifies, so the GC
  // round rewrites just the candidate.
  auto picked = policy.PickMerge({1000, 10, 2000}, {0.0, 0.6, 0.0});
  EXPECT_EQ(picked, (std::vector<size_t>{1}));

  // A companion within 4x the candidate's size does get folded in —
  // and it is the smallest qualifying one.
  picked = policy.PickMerge({1000, 10, 35, 40}, {0.0, 0.6, 0.0, 0.0});
  EXPECT_EQ(picked, (std::vector<size_t>{1, 2}));

  // Ratio 0 disables companions entirely.
  MergePolicy solo(MergePolicy::Options{8, 8, 0.5, 0.0});
  picked = solo.PickMerge({10, 12, 14}, {0.6, 0.0, 0.0});
  EXPECT_EQ(picked, (std::vector<size_t>{0}));
}

// Two GC candidates merge together without pulling in extra
// companions; over-cap rounds still fold due-GC segments in.
TEST(MergePolicyTest, GcCandidatesMergeTogether) {
  MergePolicy policy(MergePolicy::Options{8, 8, 0.5, 4.0});
  const auto picked =
      policy.PickMerge({1000, 10, 20, 3000}, {0.0, 0.7, 0.9, 0.0});
  EXPECT_EQ(picked, (std::vector<size_t>{1, 2}));
}

}  // namespace
}  // namespace esdb
