#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/failpoint.h"
#include "consensus/protocol.h"
#include "replication/replication.h"

namespace esdb {
namespace {

constexpr Micros kT = 60 * kMicrosPerSecond;  // consensus interval T
constexpr Micros kLatency = 1 * kMicrosPerMilli;

IndexSpec TestSpec() {
  IndexSpec spec;
  spec.composite_indexes = {{"tenant_id", "created_time"}};
  return spec;
}

WriteOp Insert(int64_t record, int64_t time, int64_t status = 0) {
  WriteOp op;
  op.type = OpType::kInsert;
  op.doc.Set(kFieldTenantId, Value(int64_t(1)));
  op.doc.Set(kFieldRecordId, Value(record));
  op.doc.Set(kFieldCreatedTime, Value(time));
  op.doc.Set("status", Value(status));
  return op;
}

ShardStore::Options ManualRefresh() {
  ShardStore::Options options;
  options.refresh_doc_count = 0;
  return options;
}

// Master + N participants on a simulated network driven by a shared
// virtual clock (same shape as the consensus_test harness).
class Harness {
 public:
  explicit Harness(uint32_t num_participants) {
    SimNetwork::Options net;
    net.latency = kLatency;
    network = std::make_unique<SimNetwork>(&clock, net);
    std::vector<NodeId> ids;
    for (uint32_t i = 0; i < num_participants; ++i) {
      ids.push_back(i + 1);
      participants.push_back(std::make_unique<ConsensusParticipant>(
          i + 1, network.get(), &clock));
    }
    ConsensusMaster::Options options;
    options.interval = kT;
    master = std::make_unique<ConsensusMaster>(0, network.get(), &clock, ids,
                                               options);
  }

  void RunFor(Micros duration, Micros step = kLatency) {
    const Micros end = clock.Now() + duration;
    while (clock.Now() < end) {
      clock.Advance(step);
      master->Step();
      for (auto& p : participants) p->Step();
    }
  }

  VirtualClock clock;
  std::unique_ptr<SimNetwork> network;
  std::unique_ptr<ConsensusMaster> master;
  std::vector<std::unique_ptr<ConsensusParticipant>> participants;
};

class PartitionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!FailPoints::CompiledIn()) {
      GTEST_SKIP() << "fail points compiled out (ESDB_FAILPOINTS=OFF)";
    }
    FailPoints::DisarmAll();
  }
  void TearDown() override { FailPoints::DisarmAll(); }
};

// Fail-point blackout: every message drops — the network equivalent of
// a full partition. Unanimity makes the safe call: the round aborts at
// T/2, no participant applies anything, and after the heal the next
// round commits everywhere.
TEST_F(PartitionTest, ConsensusBlackoutAbortsThenHealsAndCommits) {
  Harness h(3);
  FailPoints::Arm(failsite::kNetDrop, FailPoints::EveryN(1));
  const uint64_t doomed = h.master->ProposeRule(/*tenant=*/7, /*offset=*/8);
  h.RunFor(kT);
  ASSERT_TRUE(h.master->GetRoundState(doomed).has_value());
  EXPECT_EQ(*h.master->GetRoundState(doomed),
            ConsensusMaster::RoundState::kAborted);
  for (const auto& p : h.participants) {
    EXPECT_EQ(p->rules().MaxOffset(7), 1u);  // nothing leaked through
    EXPECT_EQ(p->pending_rounds(), 0u);
  }
  EXPECT_GT(h.network->messages_dropped(), 0u);

  FailPoints::Disarm(failsite::kNetDrop);  // heal
  const uint64_t healthy = h.master->ProposeRule(7, 8);
  h.RunFor(10 * kLatency);
  EXPECT_EQ(*h.master->GetRoundState(healthy),
            ConsensusMaster::RoundState::kCommitted);
  for (const auto& p : h.participants) {
    EXPECT_EQ(p->rules().MaxOffset(7), 8u);
  }
}

// Lossy link: a deterministic every-3rd-message drop schedule runs
// under a burst of proposals. Whatever the outcome of each round,
// safety must hold — a committed round is never half-applied, and
// after the link heals RequestSync reconverges every participant onto
// the master's committed list.
TEST_F(PartitionTest, LossyLinkNeverDivergesAndSyncReconverges) {
  Harness h(3);
  FailPoints::Arm(failsite::kNetDrop, FailPoints::EveryN(3));
  for (int i = 0; i < 8; ++i) {
    h.master->ProposeRule(TenantId(1 + i % 4), 1u << (1 + i % 4));
    h.RunFor(kT + 10 * kLatency);  // each round resolves (commit/abort)
  }
  EXPECT_GT(h.network->messages_dropped(), 0u);
  EXPECT_GT(h.master->rounds_committed() + h.master->rounds_aborted(), 0u);

  FailPoints::Disarm(failsite::kNetDrop);  // heal
  for (auto& p : h.participants) {
    p->RequestSync(/*master=*/0);
  }
  h.RunFor(10 * kLatency);
  for (const auto& p : h.participants) {
    EXPECT_EQ(p->rules(), h.master->committed_rules());
  }
}

// Replica partition during physical replication: every segment copy
// fails while the "link" is down, writes keep flowing on the primary,
// and the replica diverges. After the heal a single replication round
// reconverges segment counts and live sets exactly.
TEST_F(PartitionTest, ReplicaPartitionDivergesThenReconverges) {
  IndexSpec spec = TestSpec();
  ReplicatedShard shard(&spec, ManualRefresh(), ReplicationMode::kPhysical);
  for (int64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(shard.Apply(Insert(i, i)).ok());
  }
  ASSERT_TRUE(shard.Refresh().ok());
  ASSERT_EQ(shard.replica()->num_live_docs(), 20u);

  // Partition: every copy attempt fails until healed.
  FailPoints::Arm(failsite::kReplicationCopySegment, FailPoints::EveryN(1));
  for (int round = 0; round < 3; ++round) {
    for (int64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(shard.Apply(Insert(100 + round * 10 + i, i)).ok());
    }
    EXPECT_FALSE(shard.Refresh().ok());  // round dies at the copy
  }
  // Diverged: the primary moved on, the replica's segments did not.
  EXPECT_EQ(shard.primary()->num_live_docs(), 50u);
  EXPECT_EQ(shard.replica()->num_live_docs(), 20u);
  EXPECT_GT(shard.replica_lag_rounds(), 0u);

  FailPoints::Disarm(failsite::kReplicationCopySegment);  // heal
  ASSERT_TRUE(shard.Refresh().ok());
  EXPECT_EQ(shard.replica()->num_segments(),
            shard.primary()->num_segments());
  EXPECT_EQ(shard.replica()->num_live_docs(), 50u);
  for (int64_t record = 0; record < 130; ++record) {
    auto a = shard.primary()->GetByRecordId(record);
    auto b = shard.replica()->GetByRecordId(record);
    ASSERT_EQ(a.ok(), b.ok()) << "record " << record;
    if (a.ok()) {
      EXPECT_EQ(*a, *b);
    }
  }
}

// A replica that failed over right after the heal loses nothing: the
// synchronized translog bridges whatever segment copies the partition
// suppressed.
TEST_F(PartitionTest, FailoverAfterPartitionLosesNothing) {
  IndexSpec spec = TestSpec();
  ReplicatedShard shard(&spec, ManualRefresh(), ReplicationMode::kPhysical);
  for (int64_t i = 0; i < 25; ++i) {
    ASSERT_TRUE(shard.Apply(Insert(i, i)).ok());
  }
  ASSERT_TRUE(shard.Refresh().ok());
  // Partitioned rounds: segments stop flowing, the translog does not.
  FailPoints::Arm(failsite::kReplicationCopySegment, FailPoints::EveryN(1));
  for (int64_t i = 25; i < 40; ++i) {
    ASSERT_TRUE(shard.Apply(Insert(i, i)).ok());
  }
  EXPECT_FALSE(shard.Refresh().ok());
  FailPoints::Disarm(failsite::kReplicationCopySegment);

  // Primary dies before any healed replication round runs.
  auto promoted = std::move(shard).Failover();
  ASSERT_TRUE(promoted.ok()) << promoted.status().ToString();
  (*promoted)->Refresh();
  EXPECT_EQ((*promoted)->num_live_docs(), 40u);
  for (int64_t i = 0; i < 40; ++i) {
    EXPECT_TRUE((*promoted)->GetByRecordId(i).ok()) << i;
  }
}

}  // namespace
}  // namespace esdb
