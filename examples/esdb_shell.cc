// Interactive ESDB shell: a tiny SQL REPL over an in-process cluster
// preloaded with synthetic transaction logs. Shows the end-user face
// of the system: SELECT (incl. GROUP BY, MATCH, ORDER BY _score),
// UPDATE/DELETE, EXPLAIN, and a couple of admin commands.
//
//   ./build/examples/example_esdb_shell           # interactive
//   echo "SELECT COUNT(*) FROM t" | ./build/examples/example_esdb_shell
//
// Commands:
//   <sql>;            run a statement (semicolon optional)
//   explain <sql>     show the front-end trace + physical plan
//   rules             committed secondary hashing rules
//   balance           run one balancing cycle
//   stats             cluster stats
//   quit

#include <cstdio>
#include <iostream>
#include <string>

#include "cluster/esdb.h"
#include "common/strings.h"
#include "document/json.h"
#include "query/parser.h"
#include "workload/generator.h"

using namespace esdb;  // NOLINT

namespace {

void PrintResult(const Query& query, const QueryResult& result) {
  if (!result.groups.empty() || !query.group_by.empty()) {
    std::printf("%-24s %-10s %-14s %-14s\n", query.group_by.c_str(), "count",
                "sum", "avg");
    for (const auto& [key, group] : result.groups) {
      std::printf("%-24s %-10llu %-14.2f %-14.2f\n",
                  key.ToString().c_str(),
                  static_cast<unsigned long long>(group.count), group.sum,
                  group.Avg());
    }
    return;
  }
  if (query.agg != AggFunc::kNone) {
    switch (query.agg) {
      case AggFunc::kCount:
        std::printf("count: %llu\n",
                    static_cast<unsigned long long>(result.agg_count));
        break;
      case AggFunc::kSum:
        std::printf("sum: %.4f\n", result.agg_sum);
        break;
      case AggFunc::kAvg:
        std::printf("avg: %.4f\n", result.agg_count > 0
                                       ? result.agg_sum /
                                             double(result.agg_count)
                                       : 0);
        break;
      case AggFunc::kMin:
        std::printf("min: %s\n",
                    result.agg_min ? result.agg_min->ToString().c_str()
                                   : "null");
        break;
      case AggFunc::kMax:
        std::printf("max: %s\n",
                    result.agg_max ? result.agg_max->ToString().c_str()
                                   : "null");
        break;
      case AggFunc::kNone:
        break;
    }
    return;
  }
  for (const Document& row : result.rows) {
    std::printf("%s\n", ToJson(row).c_str());
  }
  std::printf("(%zu rows of %llu matched)\n", result.rows.size(),
              static_cast<unsigned long long>(result.total_matched));
}

}  // namespace

int main() {
  Esdb::Options options;
  options.num_shards = 16;
  options.routing = RoutingKind::kDynamic;
  options.store.refresh_doc_count = 4096;
  Esdb db(std::move(options));

  WorkloadGenerator::Options wopts;
  wopts.num_tenants = 200;
  wopts.theta = 1.0;
  wopts.num_sub_attributes = 30;
  wopts.sub_attributes_per_row = 4;
  WorkloadGenerator generator(wopts);
  const int kDocs = 20000;
  for (int i = 0; i < kDocs; ++i) {
    (void)db.Insert(generator.NextDocument(Micros(i) * 10 * kMicrosPerSecond));
  }
  db.RefreshAll();
  std::printf("esdb shell — %zu synthetic transaction logs loaded on %u "
              "shards (table: transaction_logs / t)\n"
              "type SQL, or: explain <sql> | rules | balance | stats | "
              "quit\n",
              db.TotalDocs(), db.num_shards());

  std::string line;
  while (true) {
    std::printf("esdb> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    std::string input(StripWhitespace(line));
    while (!input.empty() && input.back() == ';') input.pop_back();
    if (input.empty()) continue;

    const std::string lower = AsciiLower(input);
    if (lower == "quit" || lower == "exit") break;
    if (lower == "rules") {
      for (const HashingRule& rule : db.dynamic_routing()->rules().Rules()) {
        std::printf("t=%lld s=%u tenants=%zu\n",
                    static_cast<long long>(rule.effective_time), rule.offset,
                    rule.tenants.size());
      }
      if (db.dynamic_routing()->rules().size() == 0) {
        std::printf("(no rules committed; every tenant at s=1)\n");
      }
      continue;
    }
    if (lower == "balance") {
      const size_t n = db.RunBalanceCycle(Micros(kDocs) * 10 *
                                          kMicrosPerSecond);
      std::printf("committed %zu rule proposal(s)\n", n);
      continue;
    }
    if (lower == "stats") {
      const auto counts = db.ShardDocCounts();
      size_t lo = SIZE_MAX, hi = 0;
      for (size_t c : counts) {
        lo = std::min(lo, c);
        hi = std::max(hi, c);
      }
      std::printf("docs=%zu shards=%zu shard-docs min=%zu max=%zu\n",
                  db.TotalDocs(), counts.size(), lo, hi);
      continue;
    }
    if (lower.rfind("explain ", 0) == 0) {
      auto explained = db.ExplainSql(input.substr(8));
      if (explained.ok()) {
        std::printf("%s", explained->c_str());
      } else {
        std::printf("error: %s\n", explained.status().ToString().c_str());
      }
      continue;
    }

    if (IsDmlStatement(input)) {
      auto affected = db.ExecuteDmlSql(input);
      if (affected.ok()) {
        db.RefreshAll();
        std::printf("%llu row(s) affected\n",
                    static_cast<unsigned long long>(*affected));
      } else {
        std::printf("error: %s\n", affected.status().ToString().c_str());
      }
      continue;
    }

    auto query = ParseSql(input);
    if (!query.ok()) {
      std::printf("error: %s\n", query.status().ToString().c_str());
      continue;
    }
    auto result = db.Execute(*query);
    if (!result.ok()) {
      std::printf("error: %s\n", result.status().ToString().c_str());
      continue;
    }
    PrintResult(*query, *result);
  }
  return 0;
}
