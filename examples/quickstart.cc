// Quickstart: create an ESDB instance, write transaction logs, run
// SQL queries, trigger a rebalance, and inspect the routing rules.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/example_quickstart

#include <cstdio>

#include "cluster/esdb.h"
#include "document/json.h"
#include "query/datetime.h"

using namespace esdb;  // NOLINT — example brevity

int main() {
  // A small cluster: 16 shards, dynamic secondary hashing.
  Esdb::Options options;
  options.num_shards = 16;
  options.routing = RoutingKind::kDynamic;
  options.store.refresh_doc_count = 0;  // manual refresh in this demo
  Esdb db(options);

  // Write a few transaction logs. Documents are schema-flexible; only
  // tenant_id, record_id and created_time are required (routing key).
  Micros t0 = 0;
  (void)ParseDateTime("2021-11-11 00:00:00", &t0);
  for (int i = 0; i < 1000; ++i) {
    Document doc;
    doc.Set(kFieldTenantId, Value(int64_t(i % 7 == 0 ? 1 : 2 + i % 50)));
    doc.Set(kFieldRecordId, Value(int64_t(i + 1)));
    doc.Set(kFieldCreatedTime, Value(int64_t(t0 + i * kMicrosPerSecond)));
    doc.Set("status", Value(int64_t(i % 5)));
    doc.Set("group", Value(int64_t(i % 10)));
    doc.Set("title", Value(std::string(i % 2 ? "classic novel" : "cotton shirt")));
    doc.Set(kFieldAttributes, Value(std::string("activity:singles_day;size:XL")));
    Status s = db.Insert(std::move(doc));
    if (!s.ok()) {
      std::printf("insert failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  db.RefreshAll();  // make writes searchable (near-real-time search)

  // SQL via the Xdriver4ES front end.
  auto result = db.ExecuteSql(
      "SELECT * FROM transaction_logs "
      "WHERE tenant_id = 1 AND created_time >= '2021-11-11 00:00:00' "
      "AND (status = 1 OR group = 6) "
      "ORDER BY created_time DESC LIMIT 5");
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("matched %llu rows; showing %zu (subqueries: %u)\n",
              static_cast<unsigned long long>(result->total_matched),
              result->rows.size(), db.last_subqueries());
  for (const Document& row : result->rows) {
    std::printf("  %s\n", ToJson(row).c_str());
  }

  // Full-text search on the analyzed title column.
  auto ft = db.ExecuteSql(
      "SELECT COUNT(*) FROM transaction_logs "
      "WHERE tenant_id = 1 AND MATCH(title, 'novel')");
  if (ft.ok()) {
    std::printf("full-text 'novel' count for tenant 1: %llu\n",
                static_cast<unsigned long long>(ft->agg_count));
  }

  // Tenant 1 is hot (every 7th write). Run a balancing cycle: the
  // monitor's window feeds Algorithm 1, which commits a secondary
  // hashing rule splitting tenant 1 across more shards.
  const size_t rules = db.RunBalanceCycle(/*effective_time=*/t0 +
                                          2000 * kMicrosPerSecond);
  std::printf("balance cycle committed %zu rule(s)\n", rules);
  for (const HashingRule& rule : db.dynamic_routing()->rules().Rules()) {
    std::printf("  rule: t=%lld s=%u tenants=%zu\n",
                static_cast<long long>(rule.effective_time), rule.offset,
                rule.tenants.size());
  }

  // Reads for tenant 1 now fan out over its shard run.
  auto shards = db.routing().RouteRead(1);
  std::printf("tenant 1 reads fan out to %zu shard(s)\n", shards.size());
  return 0;
}
