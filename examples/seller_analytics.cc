// Seller analytics: the workload that motivates ESDB (Section 1) —
// a seller slicing their transaction logs with ad-hoc multi-column
// filters, full-text search over auction titles, custom sub-attribute
// filters, and real-time aggregation. Also shows the Xdriver4ES
// SQL -> ES-DSL translation and the optimizer's physical plan.
//
//   ./build/examples/example_seller_analytics

#include <cstdio>

#include "cluster/esdb.h"
#include "common/random.h"
#include "query/dsl.h"
#include "query/normalize.h"
#include "query/optimizer.h"
#include "query/parser.h"
#include "workload/generator.h"

using namespace esdb;  // NOLINT

int main() {
  Esdb::Options options;
  options.num_shards = 16;
  options.routing = RoutingKind::kDynamic;
  options.store.refresh_doc_count = 4096;
  // Frequency-based indexing: only hot sub-attributes get indexed.
  options.spec.indexed_sub_attributes = {"attr0", "attr1", "attr2"};
  Esdb db(std::move(options));

  // Load a synthetic month of transaction logs.
  WorkloadGenerator::Options wopts;
  wopts.num_tenants = 500;
  wopts.theta = 1.0;
  wopts.num_sub_attributes = 50;
  wopts.sub_attributes_per_row = 6;
  WorkloadGenerator generator(wopts);
  for (int i = 0; i < 30000; ++i) {
    (void)db.Insert(generator.NextDocument(Micros(i) * 30 * kMicrosPerSecond));
  }
  db.RefreshAll();
  std::printf("loaded %zu transaction logs across %u shards\n\n",
              db.TotalDocs(), db.num_shards());

  // 1. A seller's ad-hoc multi-column query, written in SQL.
  const std::string sql =
      "SELECT record_id, status, amount, title FROM transaction_logs "
      "WHERE tenant_id = 1 AND created_time >= '1970-01-05 00:00:00' "
      "AND status IN (1, 2) AND MATCH(title, 'novel') "
      "ORDER BY created_time DESC LIMIT 5";
  std::printf("SQL:\n  %s\n\n", sql.c_str());

  // What Xdriver4ES sends to the engine (ES-DSL).
  auto dsl = SqlToDsl(sql);
  if (dsl.ok()) std::printf("ES-DSL:\n  %s\n\n", dsl->c_str());

  // The optimizer's physical plan (composite index + doc-value scan).
  auto parsed = ParseSql(sql);
  if (parsed.ok() && parsed->where != nullptr) {
    auto normalized = NormalizeForPlanning(parsed->where->Clone());
    auto plan = PlanWhere(normalized.get(), db.spec(), PlannerOptions{});
    std::printf("physical plan:\n%s\n\n", plan->ToString(1).c_str());
  }

  auto result = db.ExecuteSql(sql);
  if (!result.ok()) {
    std::printf("query failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("%llu matching rows; top %zu:\n",
              static_cast<unsigned long long>(result->total_matched),
              result->rows.size());
  for (const Document& row : result->rows) {
    std::printf("  #%lld  status=%lld  amount=%.2f  \"%s\"\n",
                static_cast<long long>(row.record_id()),
                static_cast<long long>(row.Get("status").as_int()),
                row.Get("amount").NumericValue(),
                row.Get("title").as_string().c_str());
  }

  // 2. Sub-attribute filter (frequency-based indexing serves attr0 via
  //    its index; a rare attribute would fall back to a scan).
  auto promo = db.ExecuteSql(
      "SELECT COUNT(*) FROM transaction_logs "
      "WHERE tenant_id = 1 AND attributes.attr0 = 'v3'");
  if (promo.ok()) {
    std::printf("\norders of tenant 1 with attr0=v3: %llu\n",
                static_cast<unsigned long long>(promo->agg_count));
  }

  // 3. Real-time aggregation: revenue by order status.
  auto by_status = db.ExecuteSql(
      "SELECT status, SUM(amount) FROM transaction_logs "
      "WHERE tenant_id = 1 GROUP BY status");
  if (by_status.ok()) {
    std::printf("\nrevenue by status for tenant 1:\n");
    for (const auto& [status, group] : by_status->groups) {
      std::printf("  status=%s  orders=%llu  revenue=%.2f  avg=%.2f\n",
                  status.ToString().c_str(),
                  static_cast<unsigned long long>(group.count), group.sum,
                  group.Avg());
    }
  }

  // 4. Cross-tenant analytics (platform side): top order counts.
  auto counts = db.ExecuteSql(
      "SELECT tenant_id, COUNT(*) FROM transaction_logs GROUP BY tenant_id");
  if (counts.ok()) {
    uint64_t top = 0, total = 0;
    for (const auto& [tenant, group] : counts->groups) {
      top = std::max(top, group.count);
      total += group.count;
    }
    std::printf("\n%zu active sellers; busiest holds %.1f%% of all logs "
                "(the skew ESDB exists for)\n",
                counts->groups.size(), 100.0 * double(top) / double(total));
  }
  return 0;
}
