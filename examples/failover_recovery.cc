// Failover & recovery walkthrough: physical replication keeps a
// replica current via segment files and a synchronized translog
// (Section 5.2); when the primary dies, the replica promotes and
// recovers the un-replicated tail from its translog. Also shows
// shard-level crash recovery from the on-disk state (Section 3.3).
//
//   ./build/examples/example_failover_recovery

#include <cstdio>
#include <filesystem>

#include "replication/replication.h"
#include "storage/persistence.h"

using namespace esdb;  // NOLINT

namespace {

WriteOp MakeOrder(int64_t record, int64_t time, int64_t status) {
  WriteOp op;
  op.type = OpType::kInsert;
  op.doc.Set(kFieldTenantId, Value(int64_t(42)));
  op.doc.Set(kFieldRecordId, Value(record));
  op.doc.Set(kFieldCreatedTime, Value(time));
  op.doc.Set("status", Value(status));
  op.doc.Set("title", Value(std::string("wireless mouse")));
  return op;
}

}  // namespace

int main() {
  IndexSpec spec = IndexSpec::TransactionLogDefault();
  ShardStore::Options store_options;
  store_options.refresh_doc_count = 0;  // manual refresh for the demo

  // --- Physical replication -------------------------------------------
  ReplicatedShard shard(&spec, store_options, ReplicationMode::kPhysical);
  for (int64_t i = 0; i < 1000; ++i) {
    if (!shard.Apply(MakeOrder(i, i, i % 5)).ok()) return 1;
    if (i == 600) (void)shard.Refresh();  // segments replicate here
  }
  // 601..999 exist only in the primary buffer + replica translog.
  std::printf("primary: %zu docs searchable, %zu buffered\n",
              shard.primary()->num_live_docs(),
              shard.primary()->buffered_docs());
  std::printf("replica: %zu docs in copied segments "
              "(%llu bytes shipped, %llu docs re-indexed)\n",
              shard.replica()->num_live_docs(),
              static_cast<unsigned long long>(shard.stats().bytes_copied),
              static_cast<unsigned long long>(
                  shard.stats().replica_docs_indexed));

  // --- Primary failure: promote the replica ----------------------------
  std::printf("\n** primary fails; promoting replica **\n");
  auto promoted = std::move(shard).Failover();
  if (!promoted.ok()) {
    std::printf("failover failed: %s\n",
                promoted.status().ToString().c_str());
    return 1;
  }
  (*promoted)->Refresh();
  std::printf("promoted store holds %zu docs (no data loss: translog "
              "tail replayed)\n",
              (*promoted)->num_live_docs());
  for (int64_t probe : {int64_t(0), int64_t(601), int64_t(999)}) {
    const bool found = (*promoted)->GetByRecordId(probe).ok();
    std::printf("  record %lld: %s\n", static_cast<long long>(probe),
                found ? "present" : "MISSING");
    if (!found) return 1;
  }

  // --- Crash recovery from local disk -----------------------------------
  const std::string dir =
      (std::filesystem::temp_directory_path() / "esdb_failover_demo")
          .string();
  if (!SaveShard(**promoted, dir).ok()) return 1;
  std::printf("\nshard checkpointed to %s\n", dir.c_str());

  auto reopened = OpenShard(&spec, store_options, dir);
  if (!reopened.ok()) {
    std::printf("recovery failed: %s\n",
                reopened.status().ToString().c_str());
    return 1;
  }
  (*reopened)->Refresh();
  std::printf("reopened after 'crash': %zu docs, record 999 %s\n",
              (*reopened)->num_live_docs(),
              (*reopened)->GetByRecordId(999).ok() ? "present" : "MISSING");
  std::filesystem::remove_all(dir);
  return 0;
}
