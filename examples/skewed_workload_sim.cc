// Skewed-workload simulation walkthrough: runs the virtual-time
// cluster under a Zipf write storm, watches a hotspot group arrive,
// and traces how the monitor -> balancer -> consensus loop commits
// secondary hashing rules and restores throughput (a miniature
// Figure 14).
//
//   ./build/examples/example_skewed_workload_sim

#include <cstdio>

#include "sim/cluster_sim.h"

using namespace esdb;  // NOLINT

namespace {

void PrintWindow(const ClusterSim& sim, const char* phase) {
  const auto& timeline = sim.metrics().timeline;
  if (timeline.empty()) return;
  const auto& s = timeline.back();
  std::printf("%6llds  %-22s tput=%7.0f/s  avg_delay=%6.3fs  cpu=%4.2f  "
              "rules=%llu\n",
              static_cast<long long>(s.time / kMicrosPerSecond), phase,
              s.throughput, s.avg_delay, s.cpu,
              static_cast<unsigned long long>(sim.rules_committed()));
}

}  // namespace

int main() {
  ClusterSim::Options options;
  options.num_nodes = 8;
  options.num_shards = 256;
  options.node_capacity = 32000;  // balanced ceiling 128K: modest headroom
  options.replication = ReplicationMode::kLogical;
  options.routing = RoutingKind::kDynamic;
  options.hotspot_isolation = true;  // ESDB write clients
  options.generate_rate = 120000;
  options.workload.num_tenants = 50000;
  options.workload.theta = 1.0;
  options.monitor_window = kMicrosPerSecond;
  options.consensus.interval = 2 * kMicrosPerSecond;  // T
  options.sample_period = kMicrosPerSecond;

  ClusterSim sim(options);
  std::printf("8 nodes x 256 shards, 120K writes/s, Zipf(1.0) tenants\n");
  std::printf("monitor window 1s, consensus interval T=2s\n\n");

  // Phase 1: cold start — the hottest tenants overwhelm their shards
  // until the balancer splits them.
  for (int s = 0; s < 8; ++s) {
    sim.Run(kMicrosPerSecond);
    PrintWindow(sim, s < 4 ? "cold start" : "rules active");
  }

  std::printf("\ncommitted secondary hashing rules:\n");
  for (const HashingRule& rule : sim.committed_rules().Rules()) {
    std::printf("  t=%llds  s=%-3u tenants=%zu\n",
                static_cast<long long>(rule.effective_time /
                                       kMicrosPerSecond),
                rule.offset, rule.tenants.size());
  }

  // Phase 2: a promotion flips which sellers are hot.
  std::printf("\n-- hotspot group arrives (hotter tenants, remapped) --\n");
  sim.SetWorkloadTheta(1.3);
  sim.ShiftHotspots(25000);
  for (int s = 0; s < 10; ++s) {
    sim.Run(kMicrosPerSecond);
    PrintWindow(sim, s < 4 ? "absorbing hotspot" : "recovered");
  }

  std::printf("\ntotal: generated=%llu completed=%llu backlog=%zu "
              "rules=%llu\n",
              static_cast<unsigned long long>(sim.metrics().generated),
              static_cast<unsigned long long>(sim.metrics().completed),
              sim.backlog(),
              static_cast<unsigned long long>(sim.rules_committed()));
  return 0;
}
