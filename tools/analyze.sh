#!/usr/bin/env bash
# Clang Static Analyzer sweep over src/ (the `static-analyzer` CI
# job). Replays every src/ translation unit through `clang++
# --analyze` using the flags recorded in the compile database, then
# fails on any finding not matched by tools/analyzer_suppressions.txt.
#
#   tools/analyze.sh <build-dir-with-compile_commands.json>
#
# Suppressions: one substring per line, matched against the full
# "file:line:col: warning: message [checker]" finding line. '#' lines
# and blanks are ignored. Suppress by checker tag or by file:line —
# and leave a comment saying why, like .clang-tidy does.
set -u -o pipefail

BUILD_DIR=${1:?usage: tools/analyze.sh <build-dir>}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
SUPPRESSIONS="$ROOT/tools/analyzer_suppressions.txt"
DB="$BUILD_DIR/compile_commands.json"

if [ ! -f "$DB" ]; then
  echo "analyze.sh: $DB not found (configure with" \
       "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON)" >&2
  exit 2
fi
CLANG=${CLANG:-clang++}
if ! command -v "$CLANG" >/dev/null; then
  echo "analyze.sh: $CLANG not found" >&2
  exit 2
fi

# Every src/ TU, by its entry in the compile database. The database is
# one JSON object per TU with a "file" key; src-only keeps the run
# focused on shipped code (tests get their scrutiny from the suites
# themselves, the sanitizers, and WILL_FAIL lint fixtures).
mapfile -t FILES < <(grep -o '"file": *"[^"]*"' "$DB" \
  | sed 's/.*"file": *"//; s/"$//' | grep '/src/.*\.cc$' | sort -u)
if [ ${#FILES[@]} -eq 0 ]; then
  echo "analyze.sh: no src/ TUs in $DB" >&2
  exit 2
fi

FINDINGS=$(mktemp)
trap 'rm -f "$FINDINGS"' EXIT
for f in "${FILES[@]}"; do
  # --analyze writes findings to stderr as ordinary diagnostics; the
  # default checker set (core, cplusplus, deadcode, unix, security) is
  # exactly the contract documented in DESIGN.md §11.
  "$CLANG" --analyze -Xclang -analyzer-output=text \
    -std=c++20 -I "$ROOT/src" -c "$f" -o /dev/null 2>>"$FINDINGS" || true
done

# Keep only finding headlines (not the step-by-step path notes), then
# drop suppressed ones.
grep "warning:" "$FINDINGS" | sort -u > "$FINDINGS.warn" || true
ACTIVE="$FINDINGS.warn"
if [ -s "$SUPPRESSIONS" ]; then
  PATTERNS=$(grep -v '^\s*#' "$SUPPRESSIONS" | grep -v '^\s*$' || true)
  if [ -n "$PATTERNS" ]; then
    grep -F -v -f <(printf '%s\n' "$PATTERNS") "$ACTIVE" > "$FINDINGS.act" \
      || true
    ACTIVE="$FINDINGS.act"
  fi
fi

COUNT=$(wc -l < "$ACTIVE")
if [ "$COUNT" -gt 0 ]; then
  echo "clang static analyzer: $COUNT unsuppressed finding(s):"
  cat "$ACTIVE"
  exit 1
fi
echo "clang static analyzer: ${#FILES[@]} TU(s), no unsuppressed findings"
