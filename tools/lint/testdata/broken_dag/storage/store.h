// Upward include: storage (layer 1) reaching into query (layer 2).
// Expected diagnostic: layer-dag.
#include "query/executor.h"

struct Store {
  int id = 0;
};
