struct Executor {
  int id = 0;
};
