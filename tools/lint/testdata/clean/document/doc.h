#include "common/failpoint.h"

struct Doc {
  int id = 0;
};
