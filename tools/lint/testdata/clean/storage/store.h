#include "common/mutex.h"
#include "document/doc.h"

// A mutex-owning class with every member either annotated, exempt, or
// explicitly waived — and an acyclic two-lock order.
class Store {
 public:
  void Use();

 private:
  Mutex write_mu_;
  Mutex epoch_mu_ ACQUIRED_AFTER(write_mu_);
  int epoch_ GUARDED_BY(epoch_mu_) = 0;
  const int capacity_ = 4;
  int scratch_ = 0;  // lint:unguarded(single-threaded scratch space)
};
