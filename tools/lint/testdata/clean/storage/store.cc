#include "storage/store.h"

#include "common/failpoint.h"

#define ESDB_FAIL_POINT(site) (void)(site)

void Store::Use() { ESDB_FAIL_POINT(failsite::kDemoSite); }
