// Stand-in for the wrapper header: the one file allowed to touch the
// raw primitives.
#include <mutex>

#define GUARDED_BY(x)
#define ACQUIRED_AFTER(...)

class Mutex {
  std::mutex mu_;
};
