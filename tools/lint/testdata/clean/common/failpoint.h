// Minimal fail-point registry satisfying the failpoint-registry
// check: one declared constant, registered and used.
namespace failsite {
inline constexpr const char* kDemoSite = "demo/site";
}  // namespace failsite
