// Raw primitive outside common/mutex.h. Expected diagnostics:
// raw-primitive for the include and for std::mutex / std::lock_guard.
#include <mutex>

class Cache {
 public:
  void Put() { std::lock_guard<std::mutex> lock(mu_); }

 private:
  std::mutex mu_;
};
