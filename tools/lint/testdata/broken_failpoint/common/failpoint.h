// Registry with one declared-and-registered site (kGood) and one
// declared-but-unregistered site (kOrphan). Expected diagnostics:
// failpoint-registry — the unregistered use of kOrphan plus the
// registry imbalance itself.
namespace failsite {
inline constexpr const char* kGood = "demo/good";
inline constexpr const char* kOrphan = "demo/orphan";
}  // namespace failsite
