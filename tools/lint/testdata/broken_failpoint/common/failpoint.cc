#include "common/failpoint.h"

const char** AllSites() {
  static const char* sites[] = {
      failsite::kGood,
  };
  return sites;
}
