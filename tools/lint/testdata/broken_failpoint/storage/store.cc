#include "common/failpoint.h"

#define ESDB_FAIL_POINT(site) (void)(site)

void Touch() {
  ESDB_FAIL_POINT(failsite::kGood);
  ESDB_FAIL_POINT(failsite::kOrphan);
}
