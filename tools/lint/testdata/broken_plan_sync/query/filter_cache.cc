#include "query/plan.h"

void FingerprintFields(const PlanNode& plan, std::string* out) {
  switch (plan.kind) {
    case PlanNode::Kind::kEmpty:
      out->push_back('0');
      break;
    case PlanNode::Kind::kFullScan:
      out->push_back('1');
      break;
    case PlanNode::Kind::kIntersect:
      out->push_back('2');
      break;
  }
}
