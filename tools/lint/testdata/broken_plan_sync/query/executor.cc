#include "query/plan.h"

#include <vector>

std::vector<unsigned> EvalPlan(const PlanNode& plan) {
  switch (plan.kind) {
    case PlanNode::Kind::kEmpty:
      return {};
    case PlanNode::Kind::kFullScan:
      return {0};
    default:  // BROKEN: kIntersect falls through to a wrong answer.
      return {};
  }
}
