// Miniature plan tree for the plan-node-sync fixture: three kinds,
// and query/executor.cc below is missing the kIntersect case.
#ifndef FIXTURE_QUERY_PLAN_H_
#define FIXTURE_QUERY_PLAN_H_

#include <string>

struct PlanNode {
  enum class Kind {
    kEmpty,
    kFullScan,
    kIntersect,
  };
  Kind kind = Kind::kEmpty;
  std::string ToString(int indent) const;
};

#endif  // FIXTURE_QUERY_PLAN_H_
