#include "query/plan.h"

std::string PlanNode::ToString(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  switch (kind) {
    case Kind::kEmpty:
      out += "Empty";
      break;
    case Kind::kFullScan:
      out += "FullScan";
      break;
    case Kind::kIntersect:
      out += "Intersect";
      break;
  }
  return out;
}
