// A three-lock cycle spread across two classes: a_mu_ -> b_mu_ ->
// c_mu_ -> a_mu_. Expected diagnostic: lock-order.
#define ACQUIRED_AFTER(...)
#define GUARDED_BY(x)

class Mutex {};

class Left {
 private:
  Mutex a_mu_ ACQUIRED_AFTER(c_mu_);
  Mutex b_mu_ ACQUIRED_AFTER(a_mu_);
  Mutex c_mu_ ACQUIRED_AFTER(b_mu_);
};
