// A mutex-owning class with an unannotated, unwaived mutable member.
// Expected diagnostic: guarded-member on `rows_`.
#define GUARDED_BY(x)

class Mutex {};

class Table {
 private:
  Mutex mu_;
  int epoch_ GUARDED_BY(mu_) = 0;
  int rows_ = 0;
};
