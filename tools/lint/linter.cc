#include "linter.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <functional>
#include <map>
#include <set>
#include <sstream>
#include <utility>

namespace esdb_lint {

namespace {

// --- small string helpers --------------------------------------------

std::vector<std::string> SplitLines(const std::string& s) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : s) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  lines.push_back(cur);
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Finds `token` in `line` at an identifier boundary on both sides
// (so "std::mutex" does not match inside "std::mutex_like"). Returns
// std::string::npos when absent.
size_t FindToken(const std::string& line, const std::string& token,
                 size_t from = 0) {
  size_t pos = line.find(token, from);
  while (pos != std::string::npos) {
    const bool left_ok = pos == 0 || !IsIdentChar(line[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok = end >= line.size() || !IsIdentChar(line[end]);
    if (left_ok && right_ok) return pos;
    pos = line.find(token, pos + 1);
  }
  return std::string::npos;
}

std::string FirstPathSegment(const std::string& path) {
  const size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

// --- the include-layer DAG -------------------------------------------

const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int>* ranks =
      new std::map<std::string, int>{
          {"common", 0},      {"document", 1},  {"storage", 1},
          {"query", 2},       {"routing", 2},   {"replication", 3},
          {"consensus", 3},   {"workload", 3},  {"balancer", 4},
          {"cluster", 4},     {"sim", 4},
      };
  return *ranks;
}

// --- lightweight scope tracking --------------------------------------

// Walks stripped source and reports, for every line, the innermost
// enclosing class/struct name and the brace depth relative to that
// class's body. Token-level: good enough for this codebase's google
// style; not a C++ parser.
struct ClassScope {
  std::string name;
  int open_depth;  // depth just inside the class's '{'
};

class ScopeWalker {
 public:
  explicit ScopeWalker(const std::string& stripped)
      : lines_(SplitLines(stripped)) {}

  // Runs `fn(line_index, line, enclosing_class_or_empty, at_member_depth)`
  // for every line. `at_member_depth` is true when the line starts at
  // the direct member level of the innermost class.
  template <typename Fn>
  void ForEachLine(const Fn& fn) {
    int depth = 0;
    std::vector<ClassScope> stack;
    std::string pending_class;  // saw "class X" but not its '{' yet
    for (size_t i = 0; i < lines_.size(); ++i) {
      const std::string& line = lines_[i];
      const std::string enclosing = stack.empty() ? "" : stack.back().name;
      const bool member_depth =
          !stack.empty() && depth == stack.back().open_depth;
      fn(i, line, enclosing, member_depth);

      // Update the scope state with this line's tokens.
      for (size_t j = 0; j < line.size(); ++j) {
        const char c = line[j];
        if (IsIdentChar(c)) {
          size_t k = j;
          while (k < line.size() && IsIdentChar(line[k])) ++k;
          const std::string word = line.substr(j, k - j);
          if ((word == "class" || word == "struct") &&
              (j == 0 || !IsIdentChar(line[j - 1]))) {
            // Next identifier (skipping attribute brackets) is the
            // candidate name; "struct {" anonymous stays pending-less.
            size_t n = k;
            std::string name;
            while (n < line.size()) {
              if (line.compare(n, 2, "[[") == 0) {
                const size_t close = line.find("]]", n);
                if (close == std::string::npos) break;
                n = close + 2;
                continue;
              }
              if (IsIdentChar(line[n])) {
                size_t e = n;
                while (e < line.size() && IsIdentChar(line[e])) ++e;
                name = line.substr(n, e - n);
                break;
              }
              if (line[n] == '{' || line[n] == ';' || line[n] == ':') break;
              ++n;
            }
            if (!name.empty()) pending_class = name;
          }
          j = k - 1;
          continue;
        }
        if (c == ';' && depth == 0) pending_class.clear();
        if (c == ';' && !stack.empty() && depth == stack.back().open_depth) {
          // A forward declaration "class X;" at member level.
          if (pending_class == "X") pending_class.clear();
        }
        if (c == '{') {
          ++depth;
          if (!pending_class.empty()) {
            stack.push_back(ClassScope{pending_class, depth});
            pending_class.clear();
          }
        } else if (c == '}') {
          if (!stack.empty() && depth == stack.back().open_depth) {
            stack.pop_back();
          }
          --depth;
        }
      }
    }
  }

 private:
  std::vector<std::string> lines_;
};

void SortFindings(std::vector<Finding>* findings) {
  std::sort(findings->begin(), findings->end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.check < b.check;
            });
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

// --- comment/string stripping ----------------------------------------

std::string StripComments(const std::string& contents, bool strip_strings) {
  std::string out;
  out.reserve(contents.size());
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < contents.size(); ++i) {
    const char c = contents[i];
    const char next = i + 1 < contents.size() ? contents[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out += "  ";
          ++i;
        } else if (c == '"') {
          // Raw string literals: skip to the matching delimiter so an
          // embedded "*/ or \" cannot derail the state machine.
          if (i > 0 && contents[i - 1] == 'R') {
            size_t d = i + 1;
            while (d < contents.size() && contents[d] != '(') ++d;
            const std::string delim =
                ")" + contents.substr(i + 1, d - i - 1) + "\"";
            const size_t close = contents.find(delim, d);
            const size_t end = close == std::string::npos
                                   ? contents.size()
                                   : close + delim.size();
            for (size_t k = i; k < end; ++k) {
              out += contents[k] == '\n' ? '\n'
                                         : (strip_strings ? ' ' : contents[k]);
            }
            i = end - 1;
          } else {
            state = State::kString;
            out += '"';
          }
        } else if (c == '\'') {
          state = State::kChar;
          out += '\'';
        } else {
          out += c;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
          out += '\n';
        } else {
          out += ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          out += "  ";
          ++i;
        } else {
          out += c == '\n' ? '\n' : ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out += strip_strings ? "  " : contents.substr(i, 2);
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          out += '"';
        } else {
          out += strip_strings ? (c == '\n' ? '\n' : ' ') : c;
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out += strip_strings ? "  " : contents.substr(i, 2);
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          out += '\'';
        } else {
          out += strip_strings ? ' ' : c;
        }
        break;
    }
  }
  return out;
}

// --- check: layer-dag ------------------------------------------------

std::vector<Finding> CheckLayerDag(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  const auto& ranks = LayerRanks();
  for (const SourceFile& file : files) {
    const std::string dir = FirstPathSegment(file.path);
    const auto self = ranks.find(dir);
    if (self == ranks.end()) {
      findings.push_back(
          {"layer-dag", file.path, 0,
           "directory '" + dir +
               "' has no layer assignment; add it to the layer table in "
               "tools/lint/linter.cc"});
      continue;
    }
    const std::vector<std::string> lines =
        SplitLines(StripComments(file.contents, /*strip_strings=*/false));
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      const size_t inc = line.find("#include \"");
      if (inc == std::string::npos) continue;
      const size_t start = inc + 10;
      const size_t end = line.find('"', start);
      if (end == std::string::npos) continue;
      const std::string target = line.substr(start, end - start);
      const std::string target_dir = FirstPathSegment(target);
      if (target_dir.empty()) continue;  // same-directory include
      const auto it = ranks.find(target_dir);
      if (it == ranks.end()) continue;  // not a layer include
      if (it->second > self->second) {
        findings.push_back(
            {"layer-dag", file.path, int(i + 1),
             "upward include: '" + dir + "' (layer " +
                 std::to_string(self->second) + ") must not include '" +
                 target + "' (layer " + std::to_string(it->second) + ")"});
      }
    }
  }
  return findings;
}

// --- check: raw-primitive --------------------------------------------

std::vector<Finding> CheckRawPrimitives(const std::vector<SourceFile>& files) {
  struct Rule {
    const char* token;
    bool is_include;  // match "#include <token>" instead of an identifier
    const char* allowed;
    const char* wrapper;
  };
  static const Rule kRules[] = {
      {"std::mutex", false, "common/mutex.h", "esdb::Mutex"},
      {"std::shared_mutex", false, "common/mutex.h", "esdb::SharedMutex"},
      {"std::lock_guard", false, "common/mutex.h", "esdb::MutexLock"},
      {"std::unique_lock", false, "common/mutex.h", "esdb::MutexLock"},
      {"std::scoped_lock", false, "common/mutex.h", "esdb::MutexLock"},
      {"std::condition_variable", false, "common/mutex.h", "esdb::CondVar"},
      {"std::condition_variable_any", false, "common/mutex.h",
       "esdb::CondVar"},
      {"mutex", true, "common/mutex.h", "common/mutex.h"},
      {"shared_mutex", true, "common/mutex.h", "common/mutex.h"},
      {"condition_variable", true, "common/mutex.h", "common/mutex.h"},
      {"std::thread", false, "common/thread_pool.h", "esdb::ThreadPool"},
      {"std::jthread", false, "common/thread_pool.h", "esdb::ThreadPool"},
      {"thread", true, "common/thread_pool.h", "common/thread_pool.h"},
  };
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    const std::vector<std::string> lines =
        SplitLines(StripComments(file.contents, /*strip_strings=*/true));
    for (size_t i = 0; i < lines.size(); ++i) {
      for (const Rule& rule : kRules) {
        if (file.path == rule.allowed) continue;
        bool hit;
        if (rule.is_include) {
          hit = lines[i].find("#include <" + std::string(rule.token) + ">") !=
                std::string::npos;
        } else {
          hit = FindToken(lines[i], rule.token) != std::string::npos;
        }
        if (hit) {
          findings.push_back(
              {"raw-primitive", file.path, int(i + 1),
               std::string(rule.is_include ? "#include <" : "") + rule.token +
                   (rule.is_include ? ">" : "") + " is banned outside " +
                   rule.allowed + "; use " + rule.wrapper});
        }
      }
    }
  }
  return findings;
}

// --- check: lock-order -----------------------------------------------

namespace {

struct LockEdge {
  std::string from;  // acquired earlier
  std::string to;    // acquired later
  std::string file;
  int line;
};

// Extracts the member name declared on `line` immediately before
// `macro_pos` ("Mutex epoch_mu_ ACQUIRED_AFTER(...)" -> "epoch_mu_").
std::string MemberBefore(const std::string& line, size_t macro_pos) {
  size_t end = macro_pos;
  while (end > 0 &&
         std::isspace(static_cast<unsigned char>(line[end - 1]))) {
    --end;
  }
  size_t start = end;
  while (start > 0 && IsIdentChar(line[start - 1])) --start;
  return line.substr(start, end - start);
}

std::vector<std::string> SplitArgs(const std::string& args) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : args) {
    if (c == ',') {
      out.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

std::vector<Finding> CheckLockOrder(const std::vector<SourceFile>& files) {
  std::vector<LockEdge> edges;
  for (const SourceFile& file : files) {
    if (file.path == "common/mutex.h") continue;  // the macro definitions
    const std::string stripped =
        StripComments(file.contents, /*strip_strings=*/true);
    ScopeWalker walker(stripped);
    walker.ForEachLine([&](size_t i, const std::string& line,
                           const std::string& enclosing, bool /*member*/) {
      // Preprocessor lines (the macro definitions) are not
      // annotations.
      const size_t first = line.find_first_not_of(" \t");
      if (first != std::string::npos && line[first] == '#') return;
      // The annotated member is the identifier before the EARLIEST
      // annotation on the line; later annotations on the same line
      // attach to the same declaration.
      size_t earliest = std::string::npos;
      for (const char* macro : {"ACQUIRED_AFTER", "ACQUIRED_BEFORE"}) {
        const size_t pos = FindToken(line, macro);
        if (pos < earliest) earliest = pos;
      }
      if (earliest == std::string::npos) return;
      const std::string member = MemberBefore(line, earliest);
      if (member.empty()) return;
      const std::string scope = enclosing.empty() ? "<global>" : enclosing;
      const std::string self = scope + "::" + member;
      for (const char* macro : {"ACQUIRED_AFTER", "ACQUIRED_BEFORE"}) {
        size_t pos = FindToken(line, macro);
        while (pos != std::string::npos) {
          const size_t open = line.find('(', pos);
          const size_t close =
              open == std::string::npos ? open : line.find(')', open);
          if (close == std::string::npos) break;
          for (const std::string& arg :
               SplitArgs(line.substr(open + 1, close - open - 1))) {
            const std::string other = scope + "::" + arg;
            if (std::string(macro) == "ACQUIRED_AFTER") {
              edges.push_back({other, self, file.path, int(i + 1)});
            } else {
              edges.push_back({self, other, file.path, int(i + 1)});
            }
          }
          pos = FindToken(line, macro, close);
        }
      }
    });
  }

  // Cycle detection over the global graph (DFS, three colors).
  std::map<std::string, std::vector<size_t>> adjacency;
  for (size_t e = 0; e < edges.size(); ++e) {
    adjacency[edges[e].from].push_back(e);
  }
  std::vector<Finding> findings;
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::vector<std::string> path;
  std::set<std::string> reported;

  std::function<void(const std::string&)> dfs = [&](const std::string& node) {
    color[node] = 1;
    path.push_back(node);
    for (size_t e : adjacency[node]) {
      const LockEdge& edge = edges[e];
      const int c = color[edge.to];
      if (c == 1) {
        // Found a cycle: the path suffix from edge.to around to node.
        std::string cycle;
        bool in_cycle = false;
        for (const std::string& n : path) {
          if (n == edge.to) in_cycle = true;
          if (in_cycle) cycle += n + " -> ";
        }
        cycle += edge.to;
        if (reported.insert(cycle).second) {
          findings.push_back({"lock-order", edge.file, edge.line,
                              "lock-order cycle: " + cycle});
        }
      } else if (c == 0) {
        dfs(edge.to);
      }
    }
    path.pop_back();
    color[node] = 2;
  };
  for (const auto& [node, _] : adjacency) {
    if (color[node] == 0) dfs(node);
  }
  return findings;
}

// --- check: failpoint-registry ---------------------------------------

std::vector<Finding> CheckFailPointRegistry(
    const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  const SourceFile* header = nullptr;
  const SourceFile* impl = nullptr;
  for (const SourceFile& file : files) {
    if (file.path == "common/failpoint.h") header = &file;
    if (file.path == "common/failpoint.cc") impl = &file;
  }

  // Declared constants: failsite::kName -> "site/name".
  std::map<std::string, std::string> declared;
  if (header != nullptr) {
    const std::string stripped =
        StripComments(header->contents, /*strip_strings=*/false);
    size_t pos = 0;
    while ((pos = stripped.find("constexpr const char*", pos)) !=
           std::string::npos) {
      size_t p = pos + 21;
      while (p < stripped.size() &&
             std::isspace(static_cast<unsigned char>(stripped[p]))) {
        ++p;
      }
      size_t e = p;
      while (e < stripped.size() && IsIdentChar(stripped[e])) ++e;
      const std::string name = stripped.substr(p, e - p);
      const size_t q1 = stripped.find('"', e);
      const size_t semi = stripped.find(';', e);
      if (!name.empty() && q1 != std::string::npos && semi != std::string::npos &&
          q1 < semi) {
        const size_t q2 = stripped.find('"', q1 + 1);
        if (q2 != std::string::npos) {
          declared[name] = stripped.substr(q1 + 1, q2 - q1 - 1);
        }
      }
      pos = e;
    }
  }

  // Registered constants: the body of AllSites() in failpoint.cc.
  std::set<std::string> registered;
  int allsites_line = 0;
  if (impl != nullptr) {
    const std::string stripped =
        StripComments(impl->contents, /*strip_strings=*/true);
    const size_t def = stripped.find("AllSites()");
    if (def != std::string::npos) {
      allsites_line =
          int(std::count(stripped.begin(), stripped.begin() + def, '\n')) + 1;
      const size_t open = stripped.find('{', def);
      size_t close = open;
      int depth = 0;
      for (size_t i = open; i < stripped.size(); ++i) {
        if (stripped[i] == '{') ++depth;
        if (stripped[i] == '}' && --depth == 0) {
          close = i;
          break;
        }
      }
      const std::string body = stripped.substr(open, close - open);
      size_t pos = 0;
      while ((pos = body.find("failsite::", pos)) != std::string::npos) {
        size_t e = pos + 10;
        while (e < body.size() && IsIdentChar(body[e])) ++e;
        registered.insert(body.substr(pos + 10, e - pos - 10));
        pos = e;
      }
    }
  }

  // Code sites: every ESDB_FAIL_POINT(...) outside the registry pair.
  std::map<std::string, int> used;  // constant -> first-use count
  for (const SourceFile& file : files) {
    if (file.path == "common/failpoint.h") continue;
    const std::vector<std::string> lines =
        SplitLines(StripComments(file.contents, /*strip_strings=*/false));
    for (size_t i = 0; i < lines.size(); ++i) {
      const std::string& line = lines[i];
      // Preprocessor lines (#define ESDB_FAIL_POINT..., #if...) are
      // the macro machinery, not call sites.
      const size_t first = line.find_first_not_of(" \t");
      if (first != std::string::npos && line[first] == '#') continue;
      size_t pos = 0;
      while ((pos = line.find("ESDB_FAIL_POINT", pos)) != std::string::npos) {
        const size_t open = line.find('(', pos);
        if (open == std::string::npos) break;
        const size_t close = line.find(')', open);
        std::string arg = close == std::string::npos
                              ? line.substr(open + 1)
                              : line.substr(open + 1, close - open - 1);
        // Normalize whitespace and optional ::esdb:: qualification.
        std::string norm;
        for (char c : arg) {
          if (!std::isspace(static_cast<unsigned char>(c))) norm += c;
        }
        if (norm.rfind("::esdb::", 0) == 0) norm = norm.substr(8);
        if (norm.rfind("esdb::", 0) == 0) norm = norm.substr(6);
        if (norm.rfind("failsite::", 0) == 0) {
          const std::string constant = norm.substr(10);
          ++used[constant];
          if (declared.find(constant) == declared.end()) {
            findings.push_back({"failpoint-registry", file.path, int(i + 1),
                                "fail point 'failsite::" + constant +
                                    "' is not declared in common/failpoint.h"});
          } else if (registered.find(constant) == registered.end()) {
            findings.push_back(
                {"failpoint-registry", file.path, int(i + 1),
                 "fail point 'failsite::" + constant +
                     "' is missing from AllSites() in common/failpoint.cc"});
          }
        } else {
          findings.push_back(
              {"failpoint-registry", file.path, int(i + 1),
               "ESDB_FAIL_POINT argument '" + norm +
                   "' is not a failsite:: constant; ad-hoc site names "
                   "bypass the registry and the crash matrix"});
        }
        pos = open;
      }
    }
  }

  // Registry closure: declared <-> registered <-> used.
  for (const auto& [name, site] : declared) {
    if (registered.find(name) == registered.end()) {
      findings.push_back({"failpoint-registry", "common/failpoint.cc",
                          allsites_line,
                          "declared fail point 'failsite::" + name + "' (\"" +
                              site + "\") is missing from AllSites()"});
    }
    if (used.find(name) == used.end()) {
      findings.push_back({"failpoint-registry", "common/failpoint.h", 0,
                          "declared fail point 'failsite::" + name + "' (\"" +
                              site + "\") has no ESDB_FAIL_POINT site in the "
                              "tree; dead registry entries rot the crash "
                              "matrix"});
    }
  }
  for (const std::string& name : registered) {
    if (declared.find(name) == declared.end()) {
      findings.push_back({"failpoint-registry", "common/failpoint.cc",
                          allsites_line,
                          "AllSites() lists 'failsite::" + name +
                              "' which is not declared in common/failpoint.h"});
    }
  }
  return findings;
}

// --- check: guarded-member -------------------------------------------

namespace {

// True when the stripped member-level line declares a data member; on
// success sets `*name` (google style: data members end in '_').
bool ParseDataMember(const std::string& line, std::string* name) {
  // Must be a one-line declaration ending in ';'.
  size_t end = line.size();
  while (end > 0 && std::isspace(static_cast<unsigned char>(line[end - 1]))) {
    --end;
  }
  if (end == 0 || line[end - 1] != ';') return false;
  // Labels and using/typedef/friend/static lines are not data members.
  for (const char* kw : {"using ", "typedef ", "friend ", "static ",
                         "public:", "private:", "protected:", "return "}) {
    if (line.find(kw) != std::string::npos) return false;
  }
  // Function declarations: a '(' that does not belong to a known
  // member annotation or a brace/equals initializer.
  size_t search = 0;
  size_t stop = line.size();
  // Annotations and initializers may contain parens; cut the line at
  // the first annotation/initializer token before looking for '('.
  for (const char* tok : {"GUARDED_BY", "PT_GUARDED_BY", "ACQUIRED_AFTER",
                          "ACQUIRED_BEFORE", "=", "{"}) {
    const size_t p = line.find(tok);
    if (p != std::string::npos && p < stop) stop = p;
  }
  if (line.find('(', search) < stop) return false;
  // The declared name: last identifier before the cut point / ';'.
  size_t name_end = std::min(stop, end - 1);
  while (name_end > 0 &&
         std::isspace(static_cast<unsigned char>(line[name_end - 1]))) {
    --name_end;
  }
  size_t name_start = name_end;
  while (name_start > 0 && IsIdentChar(line[name_start - 1])) --name_start;
  if (name_start == name_end) return false;
  *name = line.substr(name_start, name_end - name_start);
  // Google style: data members end in '_'; anything else at member
  // depth (enum values in one-line enums, etc.) is out of scope.
  return name->size() > 1 && (*name)[name->size() - 1] == '_';
}

bool DeclaresMutex(const std::string& line) {
  for (const char* t : {"Mutex", "SharedMutex"}) {
    const size_t pos = FindToken(line, t);
    if (pos == std::string::npos) continue;
    // A pointer/reference to a mutex is a reference to someone else's
    // lock, not a capability this class owns.
    const size_t after = pos + std::string(t).size();
    size_t p = after;
    while (p < line.size() &&
           std::isspace(static_cast<unsigned char>(line[p]))) {
      ++p;
    }
    if (p < line.size() && (line[p] == '*' || line[p] == '&')) continue;
    return true;
  }
  return false;
}

}  // namespace

std::vector<Finding> CheckGuardedMembers(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  for (const SourceFile& file : files) {
    if (file.path == "common/mutex.h") continue;  // the wrappers themselves
    const std::string stripped =
        StripComments(file.contents, /*strip_strings=*/true);
    const std::vector<std::string> raw_lines = SplitLines(file.contents);

    // Pass 1: which classes own a Mutex/SharedMutex member?
    std::set<std::string> mutex_classes;
    ScopeWalker walker1(stripped);
    walker1.ForEachLine([&](size_t /*i*/, const std::string& line,
                            const std::string& enclosing, bool member) {
      if (member && !enclosing.empty() && DeclaresMutex(line)) {
        std::string name;
        if (ParseDataMember(line, &name)) mutex_classes.insert(enclosing);
      }
    });

    // Pass 2: audit every data member of those classes.
    ScopeWalker walker2(stripped);
    walker2.ForEachLine([&](size_t i, const std::string& line,
                            const std::string& enclosing, bool member) {
      if (!member || mutex_classes.find(enclosing) == mutex_classes.end()) {
        return;
      }
      std::string name;
      if (!ParseDataMember(line, &name)) return;
      if (DeclaresMutex(line)) return;  // the capability itself
      if (FindToken(line, "CondVar") != std::string::npos) {
        return;  // a synchronization primitive, not shared data
      }
      if (FindToken(line, "std::atomic") != std::string::npos ||
          FindToken(line, "atomic") != std::string::npos) {
        return;  // atomics are their own synchronization
      }
      if (FindToken(line, "const") != std::string::npos) {
        return;  // const members are immutable after construction
      }
      if (FindToken(line, "GUARDED_BY") != std::string::npos ||
          FindToken(line, "PT_GUARDED_BY") != std::string::npos) {
        return;
      }
      // Waiver: // lint:unguarded(reason) on the line or the line above.
      const auto waived = [&](size_t idx) {
        return idx < raw_lines.size() &&
               raw_lines[idx].find("lint:unguarded(") != std::string::npos;
      };
      if (waived(i) || (i > 0 && waived(i - 1))) return;
      findings.push_back(
          {"guarded-member", file.path, int(i + 1),
           "member '" + name + "' of mutex-owning class '" + enclosing +
               "' has no GUARDED_BY/PT_GUARDED_BY annotation; add one or "
               "waive with  // lint:unguarded(reason)"});
    });
  }
  return findings;
}

// --- check: plan-node-sync -------------------------------------------

namespace {

// Index of the '}' matching the '{' at `open`, or npos.
size_t MatchBrace(const std::string& s, size_t open) {
  int depth = 0;
  for (size_t i = open; i < s.size(); ++i) {
    if (s[i] == '{') {
      ++depth;
    } else if (s[i] == '}' && --depth == 0) {
      return i;
    }
  }
  return std::string::npos;
}

// Brace-matched bodies of every *definition* of function `name` in
// stripped source: the token, a paren-matched argument list, then
// (optionally after `const`) an opening brace. Declarations and call
// sites — where the argument list is followed by ';', ',' or ')' —
// are skipped. Returns (name_position, body) pairs.
std::vector<std::pair<size_t, std::string>> FunctionBodies(
    const std::string& stripped, const std::string& name) {
  std::vector<std::pair<size_t, std::string>> bodies;
  for (size_t pos = FindToken(stripped, name); pos != std::string::npos;
       pos = FindToken(stripped, name, pos + 1)) {
    size_t p = pos + name.size();
    while (p < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[p]))) {
      ++p;
    }
    if (p >= stripped.size() || stripped[p] != '(') continue;
    int depth = 0;
    size_t close = std::string::npos;
    for (size_t i = p; i < stripped.size(); ++i) {
      if (stripped[i] == '(') {
        ++depth;
      } else if (stripped[i] == ')' && --depth == 0) {
        close = i;
        break;
      }
    }
    if (close == std::string::npos) break;
    size_t q = close + 1;
    while (q < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[q]))) {
      ++q;
    }
    if (stripped.compare(q, 5, "const") == 0 &&
        (q + 5 >= stripped.size() || !IsIdentChar(stripped[q + 5]))) {
      q += 5;
      while (q < stripped.size() &&
             std::isspace(static_cast<unsigned char>(stripped[q]))) {
        ++q;
      }
    }
    if (q >= stripped.size() || stripped[q] != '{') continue;
    const size_t end = MatchBrace(stripped, q);
    if (end == std::string::npos) continue;
    bodies.emplace_back(pos, stripped.substr(q, end - q + 1));
  }
  return bodies;
}

int LineOf(const std::string& stripped, size_t pos) {
  return int(std::count(stripped.begin(), stripped.begin() + ptrdiff_t(pos),
                        '\n')) +
         1;
}

}  // namespace

std::vector<Finding> CheckPlanNodeSync(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  const SourceFile* plan_h = nullptr;
  for (const SourceFile& f : files) {
    if (f.path == "query/plan.h") plan_h = &f;
  }
  // A tree without the plan enum has nothing to keep in sync (unit-test
  // fixtures for the other checks, partial trees).
  if (plan_h == nullptr) return findings;

  const std::string stripped_h =
      StripComments(plan_h->contents, /*strip_strings=*/true);
  const size_t enum_pos = stripped_h.find("enum class Kind");
  if (enum_pos == std::string::npos) return findings;
  const size_t open = stripped_h.find('{', enum_pos);
  if (open == std::string::npos) return findings;
  const size_t close = MatchBrace(stripped_h, open);
  if (close == std::string::npos) return findings;

  // Enumerator names; skip past any `= value` so only declared names
  // are collected.
  std::vector<std::string> kinds;
  const std::string body = stripped_h.substr(open + 1, close - open - 1);
  for (size_t i = 0; i < body.size();) {
    if (IsIdentChar(body[i])) {
      size_t e = i;
      while (e < body.size() && IsIdentChar(body[e])) ++e;
      const std::string word = body.substr(i, e - i);
      if (word.size() > 1 && word[0] == 'k' &&
          std::isupper(static_cast<unsigned char>(word[1]))) {
        kinds.push_back(word);
      }
      i = e;
      while (i < body.size() && body[i] != ',') ++i;
    } else {
      ++i;
    }
  }

  // The three places a new plan-node kind must be wired up. A missing
  // case in any of them is a silent wrong-answer bug (executor returns
  // empty, fingerprint collides, EXPLAIN renders nothing), so the sync
  // is closed at lint time.
  struct Target {
    const char* path;
    const char* function;
    const char* role;
  };
  const Target kTargets[] = {
      {"query/executor.cc", "EvalPlan", "the executor dispatch"},
      {"query/filter_cache.cc", "FingerprintFields",
       "the filter-cache fingerprint"},
      {"query/plan.cc", "ToString", "the EXPLAIN renderer"},
  };
  for (const Target& t : kTargets) {
    const SourceFile* file = nullptr;
    for (const SourceFile& f : files) {
      if (f.path == t.path) file = &f;
    }
    if (file == nullptr) {
      findings.push_back({"plan-node-sync", t.path, 0,
                          "query/plan.h declares PlanNode::Kind but " +
                              std::string(t.path) + " (" + t.role +
                              ") is missing from the tree"});
      continue;
    }
    const std::string stripped =
        StripComments(file->contents, /*strip_strings=*/true);
    const auto bodies = FunctionBodies(stripped, t.function);
    if (bodies.empty()) {
      findings.push_back({"plan-node-sync", t.path, 0,
                          std::string(t.function) + "() (" + t.role +
                              ") has no definition here; the plan-node "
                              "sync check cannot anchor"});
      continue;
    }
    for (const std::string& kind : kinds) {
      bool handled = false;
      for (const auto& [pos, fn_body] : bodies) {
        if (FindToken(fn_body, "Kind::" + kind) != std::string::npos) {
          handled = true;
          break;
        }
      }
      if (!handled) {
        findings.push_back(
            {"plan-node-sync", t.path, LineOf(stripped, bodies.front().first),
             "PlanNode::Kind::" + kind + " is not handled in " + t.function +
                 "() (" + t.role +
                 "); every plan-node kind must be covered in the executor "
                 "dispatch, the fingerprint switch, and the EXPLAIN "
                 "renderer"});
      }
    }
  }
  return findings;
}

// --- driver ----------------------------------------------------------

std::vector<Finding> RunLint(const std::vector<SourceFile>& files) {
  std::vector<Finding> findings;
  for (auto* check : {CheckLayerDag, CheckRawPrimitives, CheckLockOrder,
                      CheckFailPointRegistry, CheckGuardedMembers,
                      CheckPlanNodeSync}) {
    std::vector<Finding> f = check(files);
    findings.insert(findings.end(), std::make_move_iterator(f.begin()),
                    std::make_move_iterator(f.end()));
  }
  SortFindings(&findings);
  return findings;
}

std::string ToJson(const std::vector<Finding>& findings) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n");
    out << "  {\"check\": \"" << JsonEscape(f.check) << "\", \"file\": \""
        << JsonEscape(f.file) << "\", \"line\": " << f.line
        << ", \"message\": \"" << JsonEscape(f.message) << "\"}";
  }
  out << (findings.empty() ? "]\n" : "\n]\n");
  return out.str();
}

std::string ToText(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file;
    if (f.line > 0) out << ":" << f.line;
    out << ": [" << f.check << "] " << f.message << "\n";
  }
  return out.str();
}

}  // namespace esdb_lint
