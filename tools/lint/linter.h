#ifndef ESDB_TOOLS_LINT_LINTER_H_
#define ESDB_TOOLS_LINT_LINTER_H_

// esdb_lint: project-specific static analysis over src/.
//
// Six invariants no off-the-shelf tool knows about this codebase:
//
//   layer-dag           The include-layer DAG. Layers (low to high):
//                         0 common
//                         1 document, storage
//                         2 query, routing
//                         3 replication, consensus, workload
//                         4 balancer, cluster, sim
//                       A file may include its own layer or lower;
//                       an upward include is an error. (workload is
//                       not named in the original DAG; it consumes
//                       query/routing and is consumed by cluster/sim,
//                       which pins it to layer 3.)
//   raw-primitive       std::mutex / std::lock_guard / <mutex> etc.
//                       only inside common/mutex.h; std::thread /
//                       <thread> only inside common/thread_pool.h.
//                       Everything else must go through the annotated
//                       wrappers so the thread-safety analysis sees
//                       every lock in the program.
//   lock-order          ACQUIRED_AFTER / ACQUIRED_BEFORE annotations
//                       across all of src/ form a single global
//                       lock-order graph; a cycle is an error.
//   failpoint-registry  Every ESDB_FAIL_POINT(...) site must name a
//                       failsite:: constant that is declared in
//                       common/failpoint.h AND listed in AllSites()
//                       (common/failpoint.cc), and every registered
//                       site must have at least one code site — the
//                       crash-matrix "MatrixCoversEverySite" loop,
//                       closed at lint time instead of test time.
//   guarded-member      In a class that declares a Mutex/SharedMutex,
//                       every non-static, non-const, non-atomic data
//                       member must carry GUARDED_BY/PT_GUARDED_BY or
//                       an explicit waiver comment on its own line or
//                       the line above:  // lint:unguarded(reason)
//   plan-node-sync      Every enumerator of PlanNode::Kind
//                       (query/plan.h) must appear as a Kind:: token
//                       inside the body of EvalPlan (query/executor.cc,
//                       the executor dispatch), FingerprintFields
//                       (query/filter_cache.cc, the cache fingerprint),
//                       and PlanNode::ToString (query/plan.cc, the
//                       EXPLAIN renderer). A kind added to the planner
//                       but missed in any of the three is a silent
//                       wrong-answer bug; the three-way sync is closed
//                       at lint time. Skipped when query/plan.h is not
//                       among the inputs.
//
// The linter is deliberately dependency-free (std only, token/line
// level, no libclang): it must build and run everywhere the tree
// builds, including minimal CI containers.

#include <string>
#include <vector>

namespace esdb_lint {

// One input file. `path` is relative to the source root and uses '/'
// separators (e.g. "storage/shard_store.cc"): the first path segment
// is the file's layer directory.
struct SourceFile {
  std::string path;
  std::string contents;
};

// One diagnostic. `line` is 1-based; 0 marks a whole-tree finding
// (e.g. a registry imbalance that has no single anchor line).
struct Finding {
  std::string check;
  std::string file;
  int line = 0;
  std::string message;
};

// Runs every check. Findings are sorted by (file, line, check).
std::vector<Finding> RunLint(const std::vector<SourceFile>& files);

// Individual passes, exposed for the unit tests.
std::vector<Finding> CheckLayerDag(const std::vector<SourceFile>& files);
std::vector<Finding> CheckRawPrimitives(const std::vector<SourceFile>& files);
std::vector<Finding> CheckLockOrder(const std::vector<SourceFile>& files);
std::vector<Finding> CheckFailPointRegistry(
    const std::vector<SourceFile>& files);
std::vector<Finding> CheckGuardedMembers(const std::vector<SourceFile>& files);
std::vector<Finding> CheckPlanNodeSync(const std::vector<SourceFile>& files);

// Replaces comments (and, if `strip_strings`, string/char literals)
// with spaces, preserving the line structure so findings keep exact
// line numbers. Exposed for the unit tests.
std::string StripComments(const std::string& contents, bool strip_strings);

// Machine-readable findings: a JSON array of
//   {"check": ..., "file": ..., "line": N, "message": ...}
std::string ToJson(const std::vector<Finding>& findings);

// "file:line: [check] message" per finding.
std::string ToText(const std::vector<Finding>& findings);

}  // namespace esdb_lint

#endif  // ESDB_TOOLS_LINT_LINTER_H_
