// esdb_lint driver: walks a source root, runs every check, prints
// findings, exits nonzero when anything fired.
//
//   esdb_lint [--format=human|json] [--check=<name>[,<name>...]] <src-root>
//
// Checks: layer-dag raw-primitive lock-order failpoint-registry
//         guarded-member  (default: all)

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "linter.h"

namespace {

namespace fs = std::filesystem;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--format=human|json] [--check=name,...] "
               "<src-root>\n"
               "checks: layer-dag raw-primitive lock-order "
               "failpoint-registry guarded-member\n",
               argv0);
  return 2;
}

std::vector<esdb_lint::SourceFile> LoadTree(const fs::path& root) {
  std::vector<esdb_lint::SourceFile> files;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext != ".h" && ext != ".cc") continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string rel = fs::relative(entry.path(), root).generic_string();
    files.push_back({std::move(rel), buf.str()});
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "human";
  std::set<std::string> only;
  std::string root;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "human" && format != "json") return Usage(argv[0]);
    } else if (arg.rfind("--check=", 0) == 0) {
      std::string list = arg.substr(8);
      size_t pos = 0;
      while (pos <= list.size()) {
        const size_t comma = list.find(',', pos);
        const size_t end = comma == std::string::npos ? list.size() : comma;
        if (end > pos) only.insert(list.substr(pos, end - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage(argv[0]);
    } else if (root.empty()) {
      root = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (root.empty()) return Usage(argv[0]);
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "esdb_lint: '%s' is not a directory\n", root.c_str());
    return 2;
  }

  const std::vector<esdb_lint::SourceFile> files = LoadTree(root);
  std::vector<esdb_lint::Finding> findings = esdb_lint::RunLint(files);
  if (!only.empty()) {
    std::vector<esdb_lint::Finding> kept;
    for (auto& f : findings) {
      if (only.count(f.check) != 0) kept.push_back(std::move(f));
    }
    findings = std::move(kept);
  }

  if (format == "json") {
    std::fputs(esdb_lint::ToJson(findings).c_str(), stdout);
  } else {
    std::fputs(esdb_lint::ToText(findings).c_str(), stdout);
    std::fprintf(stdout, "esdb_lint: %zu file(s), %zu finding(s)\n",
                 files.size(), findings.size());
  }
  return findings.empty() ? 0 : 1;
}
